//! The `resilience` subcommand: sweeps injected-fault scenarios over
//! the paper's three design points and the full TPC-H workload,
//! reporting how gracefully each design degrades.
//!
//! Every point draws its fault scenario from a seed derived only from
//! `(study seed, design, rate, query)` — never from worker identity or
//! wall-clock — so the study (and its JSON) is byte-identical at any
//! `--jobs` setting. Queries whose required tile kinds were killed are
//! recorded as `unschedulable` data points, not errors: a resilience
//! sweep's job is precisely to count them.

use std::fmt::Write as _;

use q100_core::{CoreError, FaultScenario, SimConfig};

use crate::pool;
use crate::runner::{paper_designs, Workload};

/// Default injected-fault rates: a fault-free control plus three
/// escalating failure regimes.
pub const DEFAULT_RATES: [f64; 4] = [0.0, 0.05, 0.1, 0.2];

/// One simulated `(design, rate, query)` point.
#[derive(Debug, Clone, PartialEq)]
pub struct ResiliencePoint {
    /// Design name (`LowPower`, `Pareto`, `HighPerf`).
    pub design: &'static str,
    /// Injected fault rate in `[0, 1]`.
    pub rate: f64,
    /// Query name.
    pub query: &'static str,
    /// Faults the scenario injected.
    pub faults: usize,
    /// Whether tile kills forced a reschedule onto a degraded mix.
    pub rescheduled: bool,
    /// Degraded end-to-end cycles; `None` when the query could not be
    /// scheduled on the degraded machine.
    pub cycles: Option<u64>,
    /// The typed failure, when `cycles` is `None`.
    pub error: Option<String>,
    /// Fault-free cycles of the same (design, query) pair.
    pub baseline_cycles: u64,
}

impl ResiliencePoint {
    /// Degraded-over-baseline cycle ratio; `None` for failed points.
    #[must_use]
    pub fn slowdown(&self) -> Option<f64> {
        self.cycles.map(|c| {
            if self.baseline_cycles == 0 {
                1.0
            } else {
                c as f64 / self.baseline_cycles as f64
            }
        })
    }
}

/// A complete resilience study.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceStudy {
    /// The study seed every scenario derives from.
    pub seed: u64,
    /// The fault rates swept, in order.
    pub rates: Vec<f64>,
    /// All points, in `(design, rate, query)` order.
    pub points: Vec<ResiliencePoint>,
}

impl ResilienceStudy {
    /// The points of one `(design, rate)` cell, in workload order.
    fn cell(&self, design: &str, rate: f64) -> Vec<&ResiliencePoint> {
        self.points.iter().filter(|p| p.design == design && p.rate == rate).collect()
    }

    /// Renders the study as a fixed-width text table: per design and
    /// rate, the success count, geometric-mean slowdown over the
    /// surviving queries, reschedule count, and which queries became
    /// unschedulable.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Resilience under injected faults (seed {})", self.seed);
        let _ = writeln!(
            out,
            "{:<10} {:>6} {:>8} {:>10} {:>12}  unschedulable",
            "design", "rate", "ok", "geomean", "rescheduled"
        );
        for (design, _) in paper_designs() {
            for &rate in &self.rates {
                let cell = self.cell(design, rate);
                let ok: Vec<f64> = cell.iter().filter_map(|p| p.slowdown()).collect();
                let geomean = if ok.is_empty() {
                    "-".to_string()
                } else {
                    let ln_sum: f64 = ok.iter().map(|s| s.ln()).sum();
                    format!("{:.4}", (ln_sum / ok.len() as f64).exp())
                };
                let rescheduled = cell.iter().filter(|p| p.rescheduled).count();
                let failed: Vec<&str> =
                    cell.iter().filter(|p| p.cycles.is_none()).map(|p| p.query).collect();
                let _ = writeln!(
                    out,
                    "{:<10} {:>6.2} {:>5}/{:<2} {:>10} {:>12}  {}",
                    design,
                    rate,
                    ok.len(),
                    cell.len(),
                    geomean,
                    rescheduled,
                    if failed.is_empty() { "-".to_string() } else { failed.join(",") }
                );
            }
        }
        out
    }

    /// Renders the study as JSON. Deliberately excludes job counts and
    /// wall-clock so the output is byte-identical at any `--jobs`
    /// setting — the CI determinism smoke compares these bytes.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"q100-resilience-v1\",");
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let rates: Vec<String> = self.rates.iter().map(ToString::to_string).collect();
        let _ = writeln!(out, "  \"rates\": [{}],", rates.join(", "));
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"design\": \"{}\", \"rate\": {}, \"query\": \"{}\", \
                 \"faults\": {}, \"rescheduled\": {}, \"cycles\": {}, \
                 \"baseline_cycles\": {}, \"error\": {}}}",
                p.design,
                p.rate,
                p.query,
                p.faults,
                p.rescheduled,
                p.cycles.map_or("null".to_string(), |c| c.to_string()),
                p.baseline_cycles,
                p.error.as_ref().map_or("null".to_string(), |e| format!("\"{e}\"")),
            );
            out.push_str(if i + 1 < self.points.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// The scenario seed of one point: a stable FNV-style mix of the study
/// seed and the point's identity. Depends only on indices (never worker
/// id or timing), so scenarios reproduce at any `--jobs` setting.
#[must_use]
pub fn point_seed(seed: u64, design: usize, rate: usize, query: usize) -> u64 {
    let mut h = seed ^ 0xcbf2_9ce4_8422_2325;
    for v in [design as u64, rate as u64, query as u64] {
        h ^= v.wrapping_add(0x9e37_79b9_7f4a_7c15);
        h = h.wrapping_mul(0x100_0000_01b3).rotate_left(17);
    }
    h
}

/// Runs the full study: fault-free baselines for every design, then
/// every `(design, rate, query)` scenario across the worker pool.
///
/// Unschedulable degraded machines become failed points; any other
/// simulation error is also recorded (none occur today, but a sweep
/// must never abort half-way through a fault campaign).
#[must_use]
pub fn study(workload: &Workload, seed: u64, rates: &[f64]) -> ResilienceStudy {
    let designs = paper_designs();
    let configs: Vec<SimConfig> = designs.iter().map(|(_, c)| c.clone()).collect();
    let baselines = workload.sweep(&configs);

    let grid: Vec<(usize, usize, usize)> = (0..designs.len())
        .flat_map(|d| {
            (0..rates.len()).flat_map(move |r| (0..workload.queries.len()).map(move |q| (d, r, q)))
        })
        .collect();
    let points = pool::parallel_map_metered(
        &grid,
        |&(d, r, q)| {
            let (design, config) = &designs[d];
            let rate = rates[r];
            let prepared = &workload.queries[q];
            let scenario = FaultScenario::generate(point_seed(seed, d, r, q), rate, &config.mix);
            let point = match workload.simulate_resilient(prepared, config, &scenario) {
                Ok(out) => ResiliencePoint {
                    design,
                    rate,
                    query: prepared.query.name,
                    faults: out.faults,
                    rescheduled: out.rescheduled,
                    cycles: Some(out.outcome.cycles),
                    error: None,
                    baseline_cycles: baselines[d][q].cycles,
                },
                Err(e) => {
                    workload.metrics().inc("resilience.unschedulable", 1);
                    ResiliencePoint {
                        design,
                        rate,
                        query: prepared.query.name,
                        faults: scenario.faults.len(),
                        rescheduled: false,
                        cycles: None,
                        error: Some(match e {
                            CoreError::Unschedulable { kind, .. } => {
                                format!("unschedulable: no {kind} tile left")
                            }
                            other => other.to_string(),
                        }),
                        baseline_cycles: baselines[d][q].cycles,
                    }
                }
            };
            Some(point)
        },
        Some(workload.metrics()),
    );
    let points = points.into_iter().map(|p| p.expect("one point per grid slot")).collect();
    ResilienceStudy { seed, rates: rates.to_vec(), points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_seed_is_stable_and_distinct() {
        assert_eq!(point_seed(42, 1, 2, 3), point_seed(42, 1, 2, 3));
        assert_ne!(point_seed(42, 1, 2, 3), point_seed(42, 1, 3, 2));
        assert_ne!(point_seed(42, 1, 2, 3), point_seed(43, 1, 2, 3));
    }

    #[test]
    fn study_is_job_count_independent_and_rate_zero_matches_baseline() {
        let run = |jobs: usize| {
            pool::set_jobs(Some(jobs));
            let w = Workload::prepare_subset(0.002, &["q6", "q1"]);
            let s = study(&w, 42, &[0.0, 0.3]);
            pool::set_jobs(None);
            s
        };
        let serial = run(1);
        let fanned = run(4);
        assert_eq!(serial.to_json(), fanned.to_json(), "resilience JSON must not depend on --jobs");

        // The fault-free control reproduces the baseline cycles exactly.
        for p in serial.points.iter().filter(|p| p.rate == 0.0) {
            assert_eq!(p.faults, 0, "{}: rate 0 must inject nothing", p.query);
            assert_eq!(
                p.cycles,
                Some(p.baseline_cycles),
                "{}: fault-free run must be byte-exact vs baseline",
                p.query
            );
            assert!(!p.rescheduled);
        }
        // The table renders every (design, rate) cell.
        let rendered = serial.render();
        assert!(rendered.contains("Pareto"));
        assert!(rendered.contains("geomean"));
    }

    #[test]
    fn heavy_fault_rates_degrade_but_never_abort() {
        let w = Workload::prepare_subset(0.002, &["q6"]);
        // Saturating rate: every kind derated, many kills. The sweep
        // must complete, with failures as typed points.
        let s = study(&w, 7, &[1.0]);
        assert_eq!(s.points.len(), 3, "one point per design");
        for p in &s.points {
            assert!(p.faults > 0);
            match p.cycles {
                Some(c) => assert!(c >= p.baseline_cycles, "{}: faults cannot speed up", p.design),
                None => assert!(p.error.as_deref().unwrap_or("").contains("unschedulable")),
            }
        }
    }
}
