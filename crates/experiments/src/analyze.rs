//! The `analyze` subcommand: bottleneck attribution per query × design.
//!
//! Runs every workload query under the three paper designs with the
//! stall-blame recorder attached, then derives the analysis artifacts
//! from each ledger: dominant causes, the critical path over the plan
//! DAG, and analytical what-if estimates (no re-simulation). Emits a
//! deterministic `q100-blame-v1` JSON document — byte-identical at any
//! `--jobs` setting — plus a human-readable top-bottlenecks table.

use std::fmt::Write as _;

use q100_core::exec::endpoint_name;
use q100_core::trace::{critical_path, what_ifs, BlameCause, BlameReport, CriticalPath, WhatIf};
use q100_core::TileKind;

use crate::perf_report::today;
use crate::pool;
use crate::runner::{paper_designs, Workload};

/// One query's attribution under one design.
pub struct QueryAnalysis {
    /// Query name.
    pub query: String,
    /// Simulated cycles (bit-identical to the untraced sweeps).
    pub cycles: u64,
    /// The per-node cycle ledger.
    pub report: BlameReport,
    /// Longest active-cycle chain through the plan DAG.
    pub critical_path: CriticalPath,
    /// Analytical resource-relaxation estimates.
    pub what_ifs: Vec<WhatIf>,
}

/// One paper design's analyses, in workload order.
pub struct DesignAnalysis {
    /// Design name (`LowPower`/`Pareto`/`HighPerf`).
    pub design: String,
    /// Per-query analyses.
    pub queries: Vec<QueryAnalysis>,
}

/// The full attribution study.
pub struct AnalyzeStudy {
    /// ISO date the study ran (respects `SOURCE_DATE_EPOCH`).
    pub date: String,
    /// Scale factor the workload was prepared at.
    pub scale: f64,
    /// Per-design analyses, in `paper_designs()` order.
    pub designs: Vec<DesignAnalysis>,
}

/// Display names of the tile kinds, indexed by kind discriminant.
fn kind_names() -> Vec<&'static str> {
    (0..TileKind::COUNT).map(endpoint_name).collect()
}

/// Runs the attribution study over every (design, query) point, fanned
/// out across the worker pool with deterministic result ordering.
#[must_use]
pub fn study(workload: &Workload, scale: f64) -> AnalyzeStudy {
    let designs = paper_designs();
    let points: Vec<(usize, usize)> =
        (0..designs.len()).flat_map(|d| (0..workload.queries.len()).map(move |q| (d, q))).collect();
    let names = kind_names();
    let analyses = pool::parallel_map_metered(
        &points,
        |&(d, q)| {
            let prepared = &workload.queries[q];
            let (outcome, report) = workload.simulate_blamed(prepared, &designs[d].1);
            report.check_invariant().unwrap_or_else(|e| {
                panic!("{}/{}: blame invariant violated: {e}", designs[d].0, prepared.query.name)
            });
            QueryAnalysis {
                query: prepared.query.name.to_string(),
                cycles: outcome.cycles,
                critical_path: critical_path(&report),
                what_ifs: what_ifs(&report, &names),
                report,
            }
        },
        Some(workload.metrics()),
    );
    let per = workload.queries.len();
    let mut chunks = analyses.into_iter();
    let designs = designs
        .iter()
        .map(|(name, _)| DesignAnalysis {
            design: (*name).to_string(),
            queries: chunks.by_ref().take(per.max(1)).collect(),
        })
        .collect();
    AnalyzeStudy { date: today(), scale, designs }
}

impl AnalyzeStudy {
    /// Renders the study as a `q100-blame-v1` JSON document. Every
    /// field is deterministic: simulated cycles, ledger sums, and
    /// analytical estimates only — no wall-clock.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"q100-blame-v1\",");
        let _ = writeln!(out, "  \"date\": \"{}\",", self.date);
        let _ = writeln!(out, "  \"scale\": {},", self.scale);
        out.push_str("  \"designs\": [\n");
        for (d, design) in self.designs.iter().enumerate() {
            let _ = writeln!(out, "    {{\"design\": \"{}\", \"queries\": [", design.design);
            for (q, qa) in design.queries.iter().enumerate() {
                let totals = qa.report.cause_totals();
                let causes: Vec<String> = BlameCause::ALL
                    .iter()
                    .map(|c| format!("\"{}\": {:.3}", c.name(), totals[c.index()]))
                    .collect();
                let cp_nodes: Vec<String> =
                    qa.critical_path.nodes.iter().map(ToString::to_string).collect();
                let wi: Vec<String> = qa
                    .what_ifs
                    .iter()
                    .map(|w| {
                        format!(
                            "{{\"label\": \"{}\", \"saved_cycles\": {:.3}, \
                             \"est_cycles\": {}, \"delta_pct\": {:.3}}}",
                            w.label, w.saved_cycles, w.est_cycles, w.delta_pct
                        )
                    })
                    .collect();
                let _ = write!(
                    out,
                    "      {{\"query\": \"{}\", \"cycles\": {}, \
                     \"active_cycles\": {:.3},\n       \"causes\": {{{}}},\n       \
                     \"critical_path\": {{\"nodes\": [{}], \"cycles\": {:.3}, \
                     \"fraction\": {:.6}}},\n       \"what_if\": [{}]}}",
                    qa.query,
                    qa.cycles,
                    qa.report.active_total(),
                    causes.join(", "),
                    cp_nodes.join(", "),
                    qa.critical_path.cycles,
                    qa.critical_path.fraction,
                    wi.join(", ")
                );
                out.push_str(if q + 1 < design.queries.len() { ",\n" } else { "\n" });
            }
            out.push_str("    ]}");
            out.push_str(if d + 1 < self.designs.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders the human-readable top-bottlenecks table: per design ×
    /// query, the three dominant causes (as share of the full per-node
    /// ledger), the critical-path fraction, and the best what-if.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str("Bottleneck attribution (top causes per query x design)\n");
        for design in &self.designs {
            let _ = writeln!(out, "\n== {} ==", design.design);
            let _ = writeln!(
                out,
                "{:<6} {:>12} {:>10}  {:<52} best what-if",
                "query", "cycles", "crit.path", "top causes (% of ledger)"
            );
            for qa in &design.queries {
                let ledger: f64 = qa.report.cycles as f64 * qa.report.nodes.len().max(1) as f64;
                let mut top: Vec<(BlameCause, f64)> = qa.report.top_causes();
                top.truncate(3);
                let causes: Vec<String> = top
                    .iter()
                    .map(|&(c, v)| format!("{} {:.1}%", c.name(), v / ledger.max(1.0) * 100.0))
                    .collect();
                let best = qa
                    .what_ifs
                    .iter()
                    .max_by(|a, b| a.saved_cycles.total_cmp(&b.saved_cycles))
                    .filter(|w| w.saved_cycles > 0.0)
                    .map_or("-".to_string(), |w| {
                        format!("{} => est {:+.1}%", w.label, w.delta_pct)
                    });
                let _ = writeln!(
                    out,
                    "{:<6} {:>12} {:>10.3}  {:<52} {}",
                    qa.query,
                    qa.cycles,
                    qa.critical_path.fraction,
                    causes.join(", "),
                    best
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use q100_core::trace::validate_blame_json;

    #[test]
    fn study_json_is_job_count_independent_and_valid() {
        let run = |jobs: usize| {
            pool::set_jobs(Some(jobs));
            let w = Workload::prepare_subset(0.002, &["q6", "q1"]);
            let s = study(&w, 0.002);
            pool::set_jobs(None);
            (s.to_json(), s.render_table())
        };
        let (json_serial, table_serial) = run(1);
        let (json_jobs, table_jobs) = run(4);
        assert_eq!(json_serial, json_jobs, "analyze JSON must not depend on --jobs");
        assert_eq!(table_serial, table_jobs);
        validate_blame_json(&json_serial).unwrap();
        assert!(table_serial.contains("== Pareto =="));
    }
}
