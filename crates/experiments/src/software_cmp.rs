//! Q100 vs. software DBMS comparison (Section 4, Figures 23–26): per
//! query, the Q100 designs' runtime and energy against the modeled
//! MonetDB single thread (and the idealized 24-thread reference), plus
//! the 100× data-scaling study.

use q100_dbms::SoftwareCost;

use crate::runner::{paper_designs, Workload};

/// Queries the paper includes in the 100×-scale study (Figures 25–26).
pub const SCALED_QUERY_NAMES: [&str; 15] = [
    "q1", "q2", "q3", "q4", "q5", "q6", "q7", "q10", "q12", "q14", "q15", "q16", "q18", "q19",
    "q21",
];

/// One query's comparison row.
#[derive(Debug, Clone)]
pub struct CmpRow {
    /// Query name.
    pub query: &'static str,
    /// Modeled MonetDB single-thread cost.
    pub software: SoftwareCost,
    /// Per-design `(runtime ms, energy mJ)` in LowPower/Pareto/HighPerf
    /// order.
    pub q100: Vec<(f64, f64)>,
}

impl CmpRow {
    /// Q100 runtime as a fraction of single-thread software
    /// (Figure 23's y-axis).
    #[must_use]
    pub fn runtime_fraction(&self, design: usize) -> f64 {
        self.q100[design].0 / self.software.runtime_ms
    }

    /// Q100 energy as a fraction of single-thread software
    /// (Figure 24's y-axis).
    #[must_use]
    pub fn energy_fraction(&self, design: usize) -> f64 {
        self.q100[design].1 / self.software.energy_mj
    }
}

/// The whole comparison study.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Design names.
    pub designs: Vec<String>,
    /// Per-query rows.
    pub rows: Vec<CmpRow>,
}

impl Comparison {
    /// Geometric-mean speedup of a design over 1-thread software.
    #[must_use]
    pub fn mean_speedup(&self, design: usize) -> f64 {
        geomean(self.rows.iter().map(|r| 1.0 / r.runtime_fraction(design)))
    }

    /// Geometric-mean energy advantage of a design over 1-thread
    /// software.
    #[must_use]
    pub fn mean_energy_gain(&self, design: usize) -> f64 {
        geomean(self.rows.iter().map(|r| 1.0 / r.energy_fraction(design)))
    }

    /// Renders the runtime figure (Figure 23 / 25).
    #[must_use]
    pub fn render_runtime(&self) -> String {
        self.render(|row, d| row.runtime_fraction(d) * 100.0, "% runtime vs MonetDB 1T")
    }

    /// Renders the energy figure (Figure 24 / 26).
    #[must_use]
    pub fn render_energy(&self) -> String {
        self.render(|row, d| row.energy_fraction(d) * 100.0, "% energy vs MonetDB 1T")
    }

    fn render(&self, metric: impl Fn(&CmpRow, usize) -> f64, title: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# {title} (100% = single-thread software; ideal 24T = {:.2}%)",
            100.0 / 24.0
        );
        let _ = write!(out, "{:>5} {:>12}", "query", "SW ms");
        for d in &self.designs {
            let _ = write!(out, " {d:>10}");
        }
        out.push('\n');
        for row in &self.rows {
            let _ = write!(out, "{:>5} {:>12.3}", row.query, row.software.runtime_ms);
            for d in 0..self.designs.len() {
                let _ = write!(out, " {:>9.3}%", metric(row, d));
            }
            out.push('\n');
        }
        let _ = write!(out, "{:>5} {:>12}", "AVG", "");
        for d in 0..self.designs.len() {
            let avg = geomean(self.rows.iter().map(|r| metric(r, d)));
            let _ = write!(out, " {avg:>9.3}%");
        }
        out.push('\n');
        out
    }
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = values.fold((0.0, 0usize), |(s, n), v| (s + v.ln(), n + 1));
    if n == 0 {
        0.0
    } else {
        (sum / n as f64).exp()
    }
}

/// Runs the comparison for a prepared workload: models the software
/// baseline by executing each query's plan and costing the counted
/// work, and simulates the three Q100 designs.
#[must_use]
pub fn compare(workload: &Workload) -> Comparison {
    let designs: Vec<String> = paper_designs().iter().map(|(n, _)| (*n).to_string()).collect();
    // The three Q100 designs sweep in parallel over the pool; the
    // software-model runs fan out per query the same way.
    let configs: Vec<_> = paper_designs().iter().map(|(_, c)| c.clone()).collect();
    let grouped = workload.sweep(&configs);
    let software = crate::pool::parallel_map_metered(
        &workload.queries,
        |prepared| {
            let plan = (prepared.query.software)();
            let (_, stats) = q100_dbms::run(&plan, &workload.db)
                .unwrap_or_else(|e| panic!("{}: software run failed: {e}", prepared.query.name));
            stats.record_into(workload.metrics());
            SoftwareCost::of(&stats)
        },
        Some(workload.metrics()),
    );
    let rows = workload
        .queries
        .iter()
        .zip(software)
        .enumerate()
        .map(|(qi, (prepared, software))| {
            let q100 = grouped.iter().map(|g| (g[qi].runtime_ms(), g[qi].energy_mj())).collect();
            CmpRow { query: prepared.query.name, software, q100 }
        })
        .collect();
    Comparison { designs, rows }
}

/// The 100× scaling study (Figures 25–26): the same comparison run at
/// `base_scale` × 100 over the 15-query subset.
#[must_use]
pub fn compare_scaled(base_scale: f64) -> Comparison {
    let workload = Workload::prepare_subset(base_scale * 100.0, &SCALED_QUERY_NAMES);
    compare(&workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use q100_tpch::queries;

    #[test]
    fn q100_beats_software_on_every_query() {
        let w = Workload::prepare_subset(0.01, &["q1", "q6", "q3", "q12"]);
        let c = compare(&w);
        for row in &c.rows {
            for d in 0..3 {
                assert!(
                    row.runtime_fraction(d) < 1.0,
                    "{} design {d}: Q100 slower than software ({:.3})",
                    row.query,
                    row.runtime_fraction(d)
                );
                assert!(
                    row.energy_fraction(d) < 0.1,
                    "{} design {d}: energy gap must be large ({:.4})",
                    row.query,
                    row.energy_fraction(d)
                );
            }
        }
    }

    #[test]
    fn highperf_is_fastest_design_on_average() {
        let w = Workload::prepare_subset(0.01, &["q1", "q5", "q10"]);
        let c = compare(&w);
        assert!(c.mean_speedup(2) >= c.mean_speedup(0), "HighPerf >= LowPower");
    }

    #[test]
    fn scaled_queries_are_the_paper_subset() {
        assert_eq!(SCALED_QUERY_NAMES.len(), 15);
        for q in SCALED_QUERY_NAMES {
            assert!(queries::by_name(q).is_some());
        }
    }

    #[test]
    fn renders_include_average_row() {
        let w = Workload::prepare_subset(0.005, &["q6"]);
        let c = compare(&w);
        assert!(c.render_runtime().contains("AVG"));
        assert!(c.render_energy().contains("AVG"));
    }
}
