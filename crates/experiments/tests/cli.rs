//! Smoke tests of the `q100-experiments` binary's error handling: bad
//! flags and unknown experiment names must exit with code 2 and a
//! one-line diagnostic, never a panic or a silent success. Error paths
//! never prepare a workload; the one success-path test uses a trivial
//! scale factor so the suite stays fast in debug builds.

use std::process::Command;

fn run(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_q100-experiments"))
        .args(args)
        .output()
        .expect("binary must spawn");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn unknown_experiment_name_exits_2_with_diagnostic() {
    for name in ["fig99", "fig2", "table9", "frobnicate", "--resilliance"] {
        let (code, _, stderr) = run(&[name]);
        assert_eq!(code, Some(2), "`{name}` must exit 2, stderr: {stderr}");
        assert!(stderr.contains("unknown experiment"), "`{name}` diagnostic: {stderr}");
        assert_eq!(stderr.lines().count(), 1, "one-line diagnostic for `{name}`: {stderr}");
    }
}

#[test]
fn malformed_flag_values_exit_2_with_diagnostic() {
    for (args, needle) in [
        (&["--jobs", "frog", "fig13"][..], "--jobs"),
        (&["--jobs", "0", "fig13"][..], "--jobs"),
        (&["--sf", "tiny", "fig13"][..], "--sf"),
        (&["--seed", "-1", "resilience"][..], "--seed"),
        (&["--sf"][..], "--sf"),
    ] {
        let (code, _, stderr) = run(args);
        assert_eq!(code, Some(2), "{args:?} must exit 2, stderr: {stderr}");
        assert!(stderr.contains(needle), "{args:?} diagnostic must name the flag: {stderr}");
    }
}

#[test]
fn zero_lookup_runs_print_no_cache_lines() {
    // A bare --metrics dump prepares the workload but never simulates,
    // so every cache counter stays at zero — the per-figure cache lines
    // must be suppressed, not printed as `0 hits / 0 misses`.
    let dir = std::env::temp_dir().join(format!("q100-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let metrics = dir.join("metrics.json");
    let (code, stdout, stderr) = run(&["--sf", "0.0005", "--metrics", metrics.to_str().unwrap()]);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(!stdout.contains("cache:"), "zero-lookup run must print no cache lines, got: {stdout}");
    assert!(metrics.exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn help_exits_0_and_no_args_exits_1() {
    let (code, stdout, _) = run(&["--help"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("usage:"));
    assert!(stdout.contains("resilience"));
    assert!(stdout.contains("analyze"));

    let (code, _, stderr) = run(&[]);
    assert_eq!(code, Some(1), "bare invocation keeps the usage exit");
    assert!(stderr.contains("usage:"));
}
