//! Smoke tests of the `q100-experiments` binary's error handling: bad
//! flags and unknown experiment names must exit with code 2 and a
//! one-line diagnostic, never a panic or a silent success. Only error
//! paths run here, so no workload is ever prepared and the tests stay
//! fast in debug builds.

use std::process::Command;

fn run(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_q100-experiments"))
        .args(args)
        .output()
        .expect("binary must spawn");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn unknown_experiment_name_exits_2_with_diagnostic() {
    for name in ["fig99", "fig2", "table9", "frobnicate", "--resilliance"] {
        let (code, _, stderr) = run(&[name]);
        assert_eq!(code, Some(2), "`{name}` must exit 2, stderr: {stderr}");
        assert!(stderr.contains("unknown experiment"), "`{name}` diagnostic: {stderr}");
        assert_eq!(stderr.lines().count(), 1, "one-line diagnostic for `{name}`: {stderr}");
    }
}

#[test]
fn malformed_flag_values_exit_2_with_diagnostic() {
    for (args, needle) in [
        (&["--jobs", "frog", "fig13"][..], "--jobs"),
        (&["--jobs", "0", "fig13"][..], "--jobs"),
        (&["--sf", "tiny", "fig13"][..], "--sf"),
        (&["--seed", "-1", "resilience"][..], "--seed"),
        (&["--sf"][..], "--sf"),
    ] {
        let (code, _, stderr) = run(args);
        assert_eq!(code, Some(2), "{args:?} must exit 2, stderr: {stderr}");
        assert!(stderr.contains(needle), "{args:?} diagnostic must name the flag: {stderr}");
    }
}

#[test]
fn help_exits_0_and_no_args_exits_1() {
    let (code, stdout, _) = run(&["--help"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("usage:"));
    assert!(stdout.contains("resilience"));

    let (code, _, stderr) = run(&[]);
    assert_eq!(code, Some(1), "bare invocation keeps the usage exit");
    assert!(stderr.contains("usage:"));
}
