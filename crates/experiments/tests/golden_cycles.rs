//! Golden-cycle regression pins: exact simulated cycle counts for the
//! pinned perf-report workload (q1, q6, q14 at SF 0.01) under the three
//! paper designs. Any timing-model change — intended or not — shows up
//! here as an exact diff, and the quantum-jump fast path is checked
//! bit-for-bit against pure stepping on the same compiled plans.

use std::sync::Arc;

use q100_core::exec::simulate_plan;
use q100_core::{schedule, SimScratch, StagePlan};
use q100_experiments::{paper_designs, Workload};

/// The pinned scale factor (matches `perf_report::PINNED_SCALE`).
const SCALE: f64 = 0.01;

/// Exact cycle counts per query under (LowPower, Pareto, HighPerf).
/// Regenerate by running this test and copying the printed actuals —
/// but only after convincing yourself the timing model *should* have
/// changed.
const GOLDEN: [(&str, [u64; 3]); 3] = [
    ("q1", [735_584, 401_624, 401_624]),
    ("q6", [244_126, 61_988, 61_988]),
    ("q14", [90_994, 70_978, 70_160]),
];

#[test]
fn paper_design_cycles_are_pinned() {
    let names: Vec<&str> = GOLDEN.iter().map(|(q, _)| *q).collect();
    let w = Workload::prepare_subset(SCALE, &names);
    let mut actual = Vec::new();
    for (prepared, (name, _)) in w.queries.iter().zip(&GOLDEN) {
        let mut cycles = [0u64; 3];
        for (i, (_, config)) in paper_designs().iter().enumerate() {
            cycles[i] = w.simulate(prepared, config).cycles;
        }
        actual.push((*name, cycles));
    }
    assert_eq!(actual, GOLDEN.to_vec(), "golden cycle counts diverged; actuals: {actual:?}");
}

/// Golden blame pins: the dominant stall cause — and its blamed cycle
/// total, rounded — per pinned query × (LowPower, Pareto, HighPerf).
/// Every ledger is also rebalanced against the invariant and against
/// the unblamed cycle count, so an attribution-rule change (intended or
/// not) shows up as an exact diff here. Regenerate like `GOLDEN`.
const GOLDEN_BLAME: [(&str, [(&str, u64); 3]); 3] = [
    ("q1", [("tile_wait", 58_484_390), ("tile_wait", 27_221_844), ("tile_wait", 27_162_402)]),
    ("q6", [("tile_wait", 3_138_532), ("tile_wait", 602_740), ("tile_wait", 543_042)]),
    ("q14", [("tile_wait", 5_558_876), ("tile_wait", 4_604_512), ("tile_wait", 4_569_972)]),
];

#[test]
fn paper_design_blame_is_pinned() {
    let names: Vec<&str> = GOLDEN_BLAME.iter().map(|(q, _)| *q).collect();
    let w = Workload::prepare_subset(SCALE, &names);
    let mut actual = Vec::new();
    for (prepared, (name, _)) in w.queries.iter().zip(&GOLDEN_BLAME) {
        let mut rows = Vec::new();
        for (_, config) in paper_designs() {
            let (outcome, report) = w.simulate_blamed(prepared, &config);
            assert_eq!(
                outcome.cycles,
                w.simulate(prepared, &config).cycles,
                "{name}: blame recording must not perturb timing"
            );
            report.check_invariant().unwrap_or_else(|e| panic!("{name}: {e}"));
            let (cause, cycles) = report.top_causes()[0];
            rows.push((cause.name(), cycles.round() as u64));
        }
        actual.push((*name, [rows[0], rows[1], rows[2]]));
    }
    assert_eq!(actual, GOLDEN_BLAME.to_vec(), "golden blame pins diverged; actuals: {actual:?}");
}

/// Derated golden pins: exact cycle counts for the pinned queries on
/// the Pareto design under a 10%-rate fault scenario (seeded per
/// query), running through the full resilience path — killed tiles
/// reschedule, surviving tiles and links derate, and the event-horizon
/// solver folds the derated quanta. Regenerate like `GOLDEN`.
const GOLDEN_DERATED: [(&str, u64); 3] = [("q1", 582_302), ("q6", 61_988), ("q14", 77_826)];

#[test]
fn derated_pareto_cycles_are_pinned() {
    let names: Vec<&str> = GOLDEN_DERATED.iter().map(|(q, _)| *q).collect();
    let w = Workload::prepare_subset(SCALE, &names);
    let (_, pareto) = &paper_designs()[1];
    let mut actual = Vec::new();
    for (qi, (prepared, (name, _))) in w.queries.iter().zip(&GOLDEN_DERATED).enumerate() {
        let scenario = q100_core::FaultScenario::generate(0x9E37 + qi as u64, 0.10, &pareto.mix);
        let out = w
            .simulate_resilient(prepared, pareto, &scenario)
            .unwrap_or_else(|e| panic!("{name}: derated run unschedulable: {e}"));
        actual.push((*name, out.outcome.cycles));
    }
    assert_eq!(
        actual,
        GOLDEN_DERATED.to_vec(),
        "derated golden cycle counts diverged; actuals: {actual:?}"
    );
    let jump = w.jump_stats();
    assert!(jump.jumped_quanta > 0, "no derated run engaged the quantum-jump fast path");
}

/// On the real TPC-H workload, a jumped simulation must be
/// bit-identical to pure stepping of the same compiled plan, and the
/// fast path must actually engage somewhere in this workload. The
/// analytic event-horizon solver jumps under provisioned bandwidth
/// caps too, but the longest certified segments come from the paper
/// designs' mixes under ideal bandwidth — the fig6 design-space
/// configuration — so this check uses those on the two queries whose
/// long steady-state stages dominate fig6 engagement (q20 and q21).
#[test]
fn quantum_jump_is_bit_identical_on_tpch() {
    let w = Workload::prepare_subset(SCALE, &["q20", "q21"]);
    let mut jumped_quanta = 0u64;
    for prepared in &w.queries {
        for (design, capped) in paper_designs() {
            let config = q100_core::SimConfig::new(capped.mix);
            let sched = schedule(
                config.scheduler,
                &prepared.graph,
                &config.mix,
                &prepared.functional.profile,
            )
            .unwrap();
            let plan =
                StagePlan::compile(&prepared.graph, Arc::new(sched), &prepared.functional.profile)
                    .unwrap();
            let mut scratch = SimScratch::new();
            let jumped = simulate_plan(&plan, &config, &mut scratch).unwrap();
            jumped_quanta += scratch.jumped_quanta;
            scratch.jump_enabled = false;
            let stepped = simulate_plan(&plan, &config, &mut scratch).unwrap();
            assert_eq!(jumped, stepped, "{design}/{}", prepared.query.name);
        }
    }
    assert!(jumped_quanta > 0, "no (query, design) engaged the quantum-jump fast path");
}
