//! End-to-end checks of the parallel sweep engine and the schedule
//! cache: results must be byte-identical at any job count, and caching
//! schedules must not change a single simulated cycle.

use q100_experiments::{comm, dse, paper_designs, pool, Workload};

#[test]
fn parallel_explore_matches_serial_byte_for_byte() {
    let w = Workload::prepare_subset(0.002, &["q6", "q1"]);
    pool::set_jobs(Some(1));
    let serial = dse::explore(&w).to_csv();
    pool::set_jobs(Some(4));
    let parallel = dse::explore(&w).to_csv();
    pool::set_jobs(None);
    assert_eq!(serial, parallel, "CSV must not depend on the job count");
}

#[test]
fn plan_cache_hits_on_bandwidth_sweeps_without_changing_results() {
    let w = Workload::prepare_subset(0.002, &["q6", "q1"]);
    // A bandwidth sweep re-simulates the same (query, scheduler, mix)
    // keys under different caps — everything after the first pass per
    // design must hit the compiled-plan cache, and each plan miss
    // resolves its schedule through the schedule cache exactly once.
    let sweep = comm::bandwidth_sweep(&w, "NoC", &[2.0, comm::NOC_LIMIT_GBPS, 10.0]);
    assert!(sweep.max_slowdown() >= 1.0);
    let stats = w.plan_cache_stats();
    assert!(stats.hits > 0, "bandwidth sweep must reuse compiled plans: {stats}");
    assert!(stats.misses > 0, "first sight of each key is a miss: {stats}");
    let sched = w.sched_cache_stats();
    assert_eq!(sched.misses, stats.misses, "one schedule per compiled plan: {sched}");

    // Cache transparency: cached and from-scratch runs agree exactly.
    for p in &w.queries {
        for (name, config) in paper_designs() {
            let cached = w.simulate(p, &config);
            let uncached = w.simulate_uncached(p, &config);
            assert_eq!(cached.cycles, uncached.cycles, "{name}/{}", p.query.name);
            assert_eq!(cached.schedule, uncached.schedule, "{name}/{}", p.query.name);
        }
    }
}
