//! Serving policies: admission control, deadlines, retries, and the
//! per-device circuit breaker.

/// Knobs of the serving loop. All durations are **simulated cycles** on
/// the service's virtual clock.
#[derive(Debug, Clone, PartialEq)]
pub struct ServePolicy {
    /// Maximum admitted requests in flight (queued or on the device);
    /// arrivals beyond this depth are shed to the software path.
    pub queue_depth: usize,
    /// Total Q100 attempts per admitted request (min 1); attempts
    /// beyond the first are retries against fresh transient faults.
    pub max_attempts: u32,
    /// Backoff before retry `k` (1-based): `backoff_base_cycles << (k - 1)`.
    pub backoff_base_cycles: u64,
    /// Device cycles burned detecting one failed attempt before the
    /// request can back off or fall back.
    pub fail_cost_cycles: u64,
    /// Consecutive device failures that open the circuit breaker.
    pub breaker_threshold: u32,
    /// Cycles an open breaker waits before half-opening for a probe.
    pub breaker_cooldown_cycles: u64,
    /// Per-category fault probability fed to
    /// [`FaultScenario::generate`](q100_core::FaultScenario::generate)
    /// for every Q100 attempt.
    pub fault_rate: f64,
}

impl Default for ServePolicy {
    fn default() -> Self {
        ServePolicy {
            queue_depth: 8,
            max_attempts: 3,
            backoff_base_cycles: 4096,
            fail_cost_cycles: 1024,
            breaker_threshold: 4,
            breaker_cooldown_cycles: 1 << 18,
            fault_rate: 0.0,
        }
    }
}

/// The breaker's observable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: all arrivals admitted.
    Closed,
    /// Tripped: arrivals are shed until the cooldown elapses.
    Open,
    /// Cooldown elapsed: probes are admitted; the first success closes
    /// the breaker, the first failure reopens it.
    HalfOpen,
}

/// A per-device circuit breaker on the virtual clock: opens after
/// `threshold` *consecutive* device failures (requests whose Q100
/// attempts were exhausted or that proved unschedulable — deadline
/// misses of a healthy device do not count), half-opens `cooldown`
/// cycles later, and closes again on the first success.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: u64,
    consecutive_failures: u32,
    state: BreakerState,
    open_until: u64,
    opens: u64,
}

impl CircuitBreaker {
    /// A closed breaker (threshold min 1).
    #[must_use]
    pub fn new(threshold: u32, cooldown: u64) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            consecutive_failures: 0,
            state: BreakerState::Closed,
            open_until: 0,
            opens: 0,
        }
    }

    /// Whether an arrival at cycle `now` may reach the device. An open
    /// breaker whose cooldown has elapsed transitions to half-open and
    /// admits the probe.
    pub fn admits(&mut self, now: u64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open if now >= self.open_until => {
                self.state = BreakerState::HalfOpen;
                true
            }
            BreakerState::Open => false,
        }
    }

    /// Records a device-level success (closes a half-open breaker).
    pub fn on_success(&mut self) {
        self.consecutive_failures = 0;
        self.state = BreakerState::Closed;
    }

    /// Records a device-level failure observed at cycle `now`; opens
    /// the breaker when the failure streak reaches the threshold, or
    /// immediately when a half-open probe fails.
    pub fn on_failure(&mut self, now: u64) {
        self.consecutive_failures += 1;
        if self.state == BreakerState::HalfOpen || self.consecutive_failures >= self.threshold {
            self.state = BreakerState::Open;
            self.open_until = now.saturating_add(self.cooldown);
            self.consecutive_failures = 0;
            self.opens += 1;
        }
    }

    /// The current state.
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// How many times the breaker has opened.
    #[must_use]
    pub fn opens(&self) -> u64 {
        self.opens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_opens_after_threshold_and_half_opens_on_cooldown() {
        let mut b = CircuitBreaker::new(3, 1000);
        assert!(b.admits(0));
        b.on_failure(10);
        b.on_failure(20);
        assert_eq!(b.state(), BreakerState::Closed, "two failures stay under threshold 3");
        b.on_failure(30);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 1);
        assert!(!b.admits(100), "still cooling down");
        assert!(b.admits(1030), "cooldown elapsed: probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // A failed probe reopens immediately.
        b.on_failure(1040);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 2);
        // A successful probe closes.
        assert!(b.admits(3000));
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = CircuitBreaker::new(2, 100);
        b.on_failure(0);
        b.on_success();
        b.on_failure(10);
        assert_eq!(b.state(), BreakerState::Closed, "streak was broken by the success");
    }
}
