//! # `q100-serve`: a deterministic query-serving layer for the Q100
//!
//! The paper evaluates one query at a time; a production deployment
//! would face a *stream* of queries from many tenants, and needs the
//! robustness machinery that sits above the simulator. This crate
//! provides it, entirely on a **virtual clock** (simulated cycles — no
//! wall time, no `Instant`), so an entire chaos run is byte-identical
//! at any `--jobs` count:
//!
//! * [`TenantSpec`] + [`generate_requests`] — a seeded multi-tenant
//!   arrival stream ([`q100_xrand`]-driven, per-tenant rates, deadlines
//!   and query mixes);
//! * [`Q100Device`] — a Q100 design wrapped behind a fallible
//!   cycle-estimate interface ([`q100_core::estimate_service_cycles`])
//!   with its own bounded [`ScheduleCache`](q100_core::ScheduleCache) /
//!   [`PlanCache`](q100_core::PlanCache) and memoized fault-free
//!   baselines;
//! * [`ServePolicy`] + [`CircuitBreaker`] — admission control / load
//!   shedding at a configurable queue depth, per-query deadlines in
//!   simulated cycles, bounded retry with exponential backoff against
//!   injected [`FaultScenario`](q100_core::FaultScenario)s, and a
//!   breaker that opens after consecutive device failures and
//!   half-opens after a cooldown;
//! * [`run_service`] — the deterministic serving loop. Queries that are
//!   shed, time out, or prove unschedulable on the degraded device
//!   **fall back to the software baseline**
//!   ([`q100_dbms::SoftwareCost`]) — the service never drops a request
//!   silently, and [`ServeReport::check_invariants`] proves it:
//!   `offered == admitted + shed` and
//!   `admitted == completed + degraded + deadline_missed`.

mod device;
mod policy;
mod service;
mod tenant;

pub use device::{CostProbe, Q100Device, ServiceQuery};
pub use policy::{BreakerState, CircuitBreaker, ServePolicy};
pub use service::{
    run_service, run_service_on, Backend, Disposition, Parallelism, RequestOutcome, Serial,
    ServeReport, ShedReason, TenantReport,
};
pub use tenant::{generate_requests, Request, TenantSpec};

/// Folds `parts` into `seed` with the same stable FNV-style mix the
/// experiment sweeps use for per-point seeds: the result depends only
/// on the values, never on worker interleaving or iteration order.
#[must_use]
pub fn mix_seed(seed: u64, parts: &[u64]) -> u64 {
    let mut h = seed ^ 0xcbf2_9ce4_8422_2325;
    for &v in parts {
        h ^= v.wrapping_add(0x9e37_79b9_7f4a_7c15);
        h = h.wrapping_mul(0x100_0000_01b3).rotate_left(17);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_seed_is_stable_and_sensitive() {
        assert_eq!(mix_seed(42, &[1, 2, 3]), mix_seed(42, &[1, 2, 3]));
        assert_ne!(mix_seed(42, &[1, 2, 3]), mix_seed(42, &[1, 3, 2]));
        assert_ne!(mix_seed(42, &[1]), mix_seed(43, &[1]));
    }
}
