//! Tenants and the seeded arrival stream.

use q100_xrand::Rng;

use crate::mix_seed;

/// One tenant of the service: how often it sends queries, how long it
/// is willing to wait, and which queries it runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Display name (reported per tenant).
    pub name: String,
    /// Mean inter-arrival gap in simulated cycles (min 1). Gaps are
    /// drawn uniformly from `[1, 2 * period_cycles]`.
    pub period_cycles: u64,
    /// Relative deadline in simulated cycles from arrival.
    pub deadline_cycles: u64,
    /// Indices into the device's query table this tenant draws from
    /// (uniformly per request). Must be non-empty.
    pub queries: Vec<usize>,
    /// Relative share of the total offered request count.
    pub weight: u32,
}

/// One request of the offered stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Index into the tenant table.
    pub tenant: usize,
    /// Per-tenant sequence number (generation order).
    pub seq: u32,
    /// Index into the device's query table.
    pub query: usize,
    /// Arrival cycle on the service's virtual clock.
    pub arrival: u64,
    /// Absolute deadline cycle (`arrival + deadline_cycles`).
    pub deadline: u64,
    /// Per-request fault seed; each retry attempt mixes its attempt
    /// number in, so retries see *fresh* transient faults.
    pub seed: u64,
}

/// Generates the offered stream: `total` requests split across
/// `tenants` proportionally to their weights (remainders to the
/// lowest-indexed tenants), each tenant's arrivals drawn from its own
/// [`q100_xrand`] stream seeded by `(seed, tenant index)`, merged in
/// `(arrival, tenant, seq)` order.
///
/// Fully deterministic in `(seed, tenants, total)` — the stream never
/// depends on thread count or iteration timing.
///
/// # Panics
///
/// Panics if a tenant with a non-zero share has an empty query list or
/// a total tenant weight of zero is combined with `total > 0`.
#[must_use]
pub fn generate_requests(seed: u64, tenants: &[TenantSpec], total: usize) -> Vec<Request> {
    if tenants.is_empty() || total == 0 {
        return Vec::new();
    }
    let total_weight: u64 = tenants.iter().map(|t| u64::from(t.weight)).sum();
    assert!(total_weight > 0, "at least one tenant must have a non-zero weight");

    // Largest-share split with remainders to the lowest-indexed
    // tenants: deterministic and exactly `total` requests.
    let mut counts: Vec<usize> = tenants
        .iter()
        .map(|t| ((total as u64 * u64::from(t.weight)) / total_weight) as usize)
        .collect();
    let mut assigned: usize = counts.iter().sum();
    let mut i = 0;
    while assigned < total {
        if tenants[i % tenants.len()].weight > 0 {
            counts[i % tenants.len()] += 1;
            assigned += 1;
        }
        i += 1;
    }

    let mut requests = Vec::with_capacity(total);
    for (tenant, (spec, &count)) in tenants.iter().zip(&counts).enumerate() {
        if count == 0 {
            continue;
        }
        assert!(!spec.queries.is_empty(), "tenant `{}` has no queries", spec.name);
        let mut rng = Rng::seed_from_u64(mix_seed(seed, &[tenant as u64]));
        let period = spec.period_cycles.max(1);
        let mut clock = 0u64;
        for seq in 0..count {
            clock = clock.saturating_add(1 + rng.gen_range(0..2 * period));
            let query = spec.queries[rng.gen_range(0..spec.queries.len())];
            requests.push(Request {
                tenant,
                seq: seq as u32,
                query,
                arrival: clock,
                deadline: clock.saturating_add(spec.deadline_cycles),
                seed: mix_seed(seed, &[0x5eed, tenant as u64, seq as u64]),
            });
        }
    }
    requests.sort_by_key(|r| (r.arrival, r.tenant, r.seq));
    requests
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenants() -> Vec<TenantSpec> {
        vec![
            TenantSpec {
                name: "interactive".into(),
                period_cycles: 1000,
                deadline_cycles: 5000,
                queries: vec![0, 1],
                weight: 2,
            },
            TenantSpec {
                name: "batch".into(),
                period_cycles: 4000,
                deadline_cycles: 50_000,
                queries: vec![2],
                weight: 1,
            },
        ]
    }

    #[test]
    fn split_respects_weights_and_total() {
        let reqs = generate_requests(7, &tenants(), 91);
        assert_eq!(reqs.len(), 91);
        let t0 = reqs.iter().filter(|r| r.tenant == 0).count();
        let t1 = reqs.iter().filter(|r| r.tenant == 1).count();
        // weight 2:1 over 91 → 60/61 vs 30/31.
        assert!((60..=61).contains(&t0), "t0 = {t0}");
        assert_eq!(t0 + t1, 91);
        // Batch only ever issues query 2.
        assert!(reqs.iter().filter(|r| r.tenant == 1).all(|r| r.query == 2));
    }

    #[test]
    fn stream_is_deterministic_and_sorted() {
        let a = generate_requests(42, &tenants(), 200);
        let b = generate_requests(42, &tenants(), 200);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| (w[0].arrival, w[0].tenant) <= (w[1].arrival, w[1].tenant)));
        let c = generate_requests(43, &tenants(), 200);
        assert_ne!(a, c, "different seeds must yield different streams");
        // Deadlines are arrival-relative and seeds are unique.
        assert!(a.iter().all(|r| r.deadline > r.arrival));
        let mut seeds: Vec<u64> = a.iter().map(|r| r.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 200, "per-request fault seeds must be unique");
    }

    #[test]
    fn empty_inputs_yield_empty_stream() {
        assert!(generate_requests(1, &[], 100).is_empty());
        assert!(generate_requests(1, &tenants(), 0).is_empty());
    }

    #[test]
    fn mean_gap_tracks_period() {
        let spec = vec![TenantSpec {
            name: "t".into(),
            period_cycles: 1000,
            deadline_cycles: 1,
            queries: vec![0],
            weight: 1,
        }];
        let reqs = generate_requests(11, &spec, 2000);
        let span = reqs.last().unwrap().arrival - reqs[0].arrival;
        let mean = span as f64 / (reqs.len() - 1) as f64;
        assert!((mean - 1000.0).abs() < 100.0, "mean gap {mean} should approximate the period");
    }
}
