//! The deterministic serving loop, split into two phases.
//!
//! **Phase 1 — cost resolution.** Every attempt's [`FaultScenario`] is
//! canonicalized into its cost class (see
//! [`q100_core::ScenarioClassifier`]); the distinct `(query, class)`
//! pairs of the whole request stream are resolved through the device's
//! [`q100_core::ServiceCostCache`], and only the cache misses are
//! simulated — fanned out through a caller-supplied [`Parallelism`].
//! An attempt's cycle cost is a pure function of `(design, query,
//! effective derate)`, independent of queue/breaker state, so costs can
//! be resolved out of order and in parallel without changing anything.
//!
//! **Phase 2 — policy replay.** The virtual-clock
//! admission/deadline/retry/breaker/degradation loop runs unchanged,
//! but every `service_cycles` call becomes a table lookup into the
//! phase-1 cost matrix. The replay is serial and cheap, and — because
//! phase 1 resolves a (deterministic) superset of the attempts the
//! policy consumes — byte-identical to the original one-phase loop at
//! any worker count.

use std::collections::{HashMap, HashSet};

use q100_dbms::FallbackAccount;
use q100_trace::{Histogram, Registry, TraceEvent, TraceSink, DEFAULT_BOUNDS};

use crate::device::Q100Device;
use crate::mix_seed;
use crate::policy::{CircuitBreaker, ServePolicy};
use crate::tenant::{generate_requests, TenantSpec};
use q100_core::{CostKey, FaultScenario, ServiceCost};

/// Why an arrival was shed before reaching the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The admitted-work queue was at the policy's depth.
    QueueFull,
    /// The circuit breaker was open.
    BreakerOpen,
}

/// The final fate of one request. Every request gets exactly one — the
/// service never drops a request silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Ran on the Q100 and finished inside its deadline.
    Completed,
    /// Never admitted; answered by the software baseline.
    Shed(ShedReason),
    /// Admitted, but the device could not produce an answer (attempts
    /// exhausted or unschedulable); answered by the software baseline.
    Degraded,
    /// Admitted, but its deadline expired before the device could
    /// finish; answered (late) by the software baseline.
    DeadlineMissed,
}

impl Disposition {
    /// Stable numeric code used in trace events: 0 = completed,
    /// 1 = shed, 2 = degraded, 3 = deadline missed.
    #[must_use]
    pub fn code(self) -> u16 {
        match self {
            Disposition::Completed => 0,
            Disposition::Shed(_) => 1,
            Disposition::Degraded => 2,
            Disposition::DeadlineMissed => 3,
        }
    }
}

/// Which engine produced the request's answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The Q100 device.
    Q100,
    /// The software baseline (MonetDB-style cost model).
    Software,
}

/// The audited outcome of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestOutcome {
    /// Index into the tenant table.
    pub tenant: usize,
    /// Per-tenant sequence number.
    pub seq: u32,
    /// Index into the device's query table.
    pub query: usize,
    /// Arrival cycle.
    pub arrival: u64,
    /// Cycle the answer was produced (on whichever backend).
    pub finish: u64,
    /// Final disposition.
    pub disposition: Disposition,
    /// Backend that produced the answer.
    pub backend: Backend,
    /// Q100 attempts made (0 for shed requests).
    pub attempts: u32,
}

/// Per-tenant slice of the report.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Requests offered by this tenant.
    pub offered: u64,
    /// Requests admitted past the shedding policies.
    pub admitted: u64,
    /// Requests shed (queue full or breaker open).
    pub shed: u64,
    /// Requests completed on the Q100 inside their deadline.
    pub completed: u64,
    /// Requests degraded to the software baseline.
    pub degraded: u64,
    /// Requests whose deadline expired.
    pub deadline_missed: u64,
    /// Median latency (arrival to answer) in cycles, nearest-rank.
    pub p50_latency_cycles: u64,
    /// 99th-percentile latency in cycles, nearest-rank.
    pub p99_latency_cycles: u64,
}

/// The full, deterministic record of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Requests offered (equals `outcomes.len()`).
    pub offered: u64,
    /// Requests admitted past the shedding policies.
    pub admitted: u64,
    /// Requests shed before reaching the device.
    pub shed: u64,
    /// Shed because the queue was at depth.
    pub shed_queue_full: u64,
    /// Shed because the breaker was open.
    pub shed_breaker: u64,
    /// Admitted requests completed on the Q100 inside their deadline.
    pub completed: u64,
    /// Admitted requests degraded to the software baseline.
    pub degraded: u64,
    /// Admitted requests whose deadline expired.
    pub deadline_missed: u64,
    /// Q100 retry attempts beyond each request's first.
    pub retries: u64,
    /// Times the circuit breaker opened.
    pub breaker_opens: u64,
    /// Attempt costs resolved by phase 1 (a deterministic superset of
    /// the attempts phase 2 consumes: every request's first attempt,
    /// plus follow-ups for each attempt that resolved as failed).
    pub cost_attempts: u64,
    /// Distinct `(query, cost class)` pairs among the resolved attempts
    /// — the stream's canonical cost entropy. Both this and
    /// `cost_attempts` depend only on the inputs, never on cache warmth
    /// or worker count.
    pub cost_unique_classes: u64,
    /// Aggregate software-baseline work absorbed by fallbacks.
    pub fallback: FallbackAccount,
    /// Per-tenant slices, in tenant-table order.
    pub tenants: Vec<TenantReport>,
    /// Every request's audited outcome, in arrival order.
    pub outcomes: Vec<RequestOutcome>,
}

impl ServeReport {
    /// Proves the no-silent-drop accounting:
    ///
    /// * `offered == outcomes.len() == admitted + shed`
    /// * `admitted == completed + degraded + deadline_missed`
    /// * `shed == shed_queue_full + shed_breaker`
    /// * every `finish >= arrival`
    /// * per-tenant counters sum to the aggregate ones
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.offered != self.outcomes.len() as u64 {
            return Err(format!(
                "offered {} != recorded outcomes {}",
                self.offered,
                self.outcomes.len()
            ));
        }
        if self.offered != self.admitted + self.shed {
            return Err(format!(
                "offered {} != admitted {} + shed {}",
                self.offered, self.admitted, self.shed
            ));
        }
        if self.admitted != self.completed + self.degraded + self.deadline_missed {
            return Err(format!(
                "admitted {} != completed {} + degraded {} + deadline_missed {}",
                self.admitted, self.completed, self.degraded, self.deadline_missed
            ));
        }
        if self.shed != self.shed_queue_full + self.shed_breaker {
            return Err(format!(
                "shed {} != queue_full {} + breaker {}",
                self.shed, self.shed_queue_full, self.shed_breaker
            ));
        }
        if let Some(o) = self.outcomes.iter().find(|o| o.finish < o.arrival) {
            return Err(format!(
                "tenant {} seq {} finishes at {} before arriving at {}",
                o.tenant, o.seq, o.finish, o.arrival
            ));
        }
        let tenant_offered: u64 = self.tenants.iter().map(|t| t.offered).sum();
        if tenant_offered != self.offered {
            return Err(format!(
                "per-tenant offered sums to {tenant_offered}, aggregate is {}",
                self.offered
            ));
        }
        Ok(())
    }
}

/// Nearest-rank percentile of an already-sorted sample; 0 when empty.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// How phase 1 fans uncached class simulations out. Implementations
/// must return `f(0), f(1), …, f(n-1)` in input order; whether the
/// calls run serially or on a worker pool is invisible to the caller
/// (class costs are pure), so the report is byte-identical either way.
pub trait Parallelism: Sync {
    /// Computes `f` over `0..n`, preserving input order.
    fn run(&self, n: usize, f: &(dyn Fn(usize) -> u64 + Sync)) -> Vec<u64>;
}

/// The in-thread executor — [`run_service`]'s default. Callers with a
/// worker pool (e.g. the experiments crate) supply their own
/// [`Parallelism`] via [`run_service_on`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Serial;

impl Parallelism for Serial {
    fn run(&self, n: usize, f: &(dyn Fn(usize) -> u64 + Sync)) -> Vec<u64> {
        (0..n).map(f).collect()
    }
}

/// Cost-matrix encoding: a failed attempt (infeasible class or
/// simulation error).
const COST_FAILED: u64 = u64::MAX;
/// Cost-matrix encoding: an attempt phase 1 never resolved (phase 2
/// must never read one — `debug_assert`ed).
const COST_UNRESOLVED: u64 = u64::MAX - 1;

/// Phase 1: resolves the cost of every attempt the policy could
/// consume into a flat `requests.len() × max_attempts` matrix
/// (cycles-with-stalls, or [`COST_FAILED`]).
///
/// Round `k` probes attempt `k` of every still-live request (round 1:
/// all of them; later rounds: those whose previous attempt failed — a
/// superset of what phase 2 consumes, since costs are pure). Each
/// round canonicalizes its scenarios, deduplicates the keys, looks
/// each distinct key up in the device cost cache exactly once, and
/// simulates only the misses through `par`.
fn resolve_costs(
    device: &Q100Device<'_>,
    requests: &[crate::tenant::Request],
    policy: &ServePolicy,
    par: &dyn Parallelism,
) -> (Vec<u64>, u64, u64) {
    let max_attempts = policy.max_attempts.max(1) as usize;
    let n = requests.len();
    let mut costs = vec![COST_UNRESOLVED; n * max_attempts];
    let mut cost_attempts = 0u64;
    let mut seen_classes: HashSet<(usize, CostKey)> = HashSet::new();

    // Reused across every attempt of every request (satellite of the
    // two-phase split: no per-attempt allocations).
    let mut scenario = FaultScenario::default();
    let mut candidates: Vec<usize> = (0..n).collect();
    let mut next_candidates: Vec<usize> = Vec::new();
    let mut round: Vec<(usize, crate::device::CostProbe)> = Vec::new();
    let mut round_cost: HashMap<(usize, CostKey), ServiceCost> = HashMap::new();
    let mut misses: Vec<(usize, CostKey)> = Vec::new();

    for attempt in 1..=max_attempts {
        if candidates.is_empty() {
            break;
        }
        round.clear();
        round_cost.clear();
        misses.clear();

        for &i in &candidates {
            let req = &requests[i];
            scenario.generate_into(
                mix_seed(req.seed, &[attempt as u64]),
                policy.fault_rate,
                &device.config().mix,
            );
            let probe = device.probe_cost(req.query, &scenario);
            seen_classes.insert((req.query, probe.key));
            cost_attempts += 1;
            round.push((i, probe));
        }

        // One cache lookup per distinct (query, key) this round; the
        // leftovers are this round's misses, simulated in parallel.
        for &(i, ref probe) in &round {
            if probe.known.is_some() {
                continue;
            }
            let qk = (requests[i].query, probe.key);
            if round_cost.contains_key(&qk) || misses.contains(&qk) {
                continue;
            }
            match device.cost_cache().get(qk.0 as u64, &probe.key) {
                Some(cost) => {
                    round_cost.insert(qk, cost);
                }
                None => misses.push(qk),
            }
        }
        let fresh = par.run(misses.len(), &|j: usize| {
            let (query, key) = misses[j];
            match device.class_cost(query, &key) {
                ServiceCost::Cycles(c) => c.min(COST_UNRESOLVED - 1),
                ServiceCost::Failed => COST_FAILED,
            }
        });
        for (&(query, key), &enc) in misses.iter().zip(&fresh) {
            let cost =
                if enc == COST_FAILED { ServiceCost::Failed } else { ServiceCost::Cycles(enc) };
            device.cost_cache().insert(query as u64, key, cost);
            round_cost.insert((query, key), cost);
        }

        next_candidates.clear();
        for &(i, ref probe) in &round {
            let cost = probe.known.unwrap_or_else(|| round_cost[&(requests[i].query, probe.key)]);
            let enc = match cost {
                ServiceCost::Failed => COST_FAILED,
                ServiceCost::Cycles(c) => {
                    c.saturating_add(probe.stall_extra).min(COST_UNRESOLVED - 1)
                }
            };
            costs[i * max_attempts + (attempt - 1)] = enc;
            if enc == COST_FAILED {
                next_candidates.push(i);
            }
        }
        std::mem::swap(&mut candidates, &mut next_candidates);
    }
    (costs, cost_attempts, seen_classes.len() as u64)
}

/// Runs the serving loop: `total` requests generated from
/// `(seed, tenants)` via [`generate_requests`], pushed through `device`
/// under `policy`. Everything — arrivals, faults, backoff, deadlines —
/// lives on one virtual clock in simulated device cycles, so the
/// returned [`ServeReport`] is byte-identical for identical inputs
/// regardless of thread count or wall-clock timing.
///
/// Each arrival is disposed of in order:
///
/// 1. **Breaker** — an open breaker sheds the request to software.
/// 2. **Admission** — more than `queue_depth` admitted requests still
///    in flight sheds it to software.
/// 3. **Deadline at dispatch** — if the device queue alone already
///    pushes the start past the deadline, the request is counted as a
///    deadline miss and answered (late) by software.
/// 4. **Attempts** — up to `max_attempts` Q100 estimates, each against
///    a fresh [`FaultScenario`] derived from the request seed and the
///    attempt number, with exponential backoff between attempts.
///    Success inside the deadline completes the request; success past
///    it is aborted at the deadline (miss); exhausted attempts or an
///    unschedulable degraded mix degrade it to software and feed the
///    circuit breaker.
///
/// Attempt costs are resolved up front through the device's
/// scenario-keyed cost cache (see the module docs); this entry point
/// simulates cache misses in the calling thread — use
/// [`run_service_on`] to fan them out on a worker pool.
///
/// When `sink` is given, every request emits a
/// [`TraceEvent::ServeRequest`] slice; when `registry` is given, the
/// `serve.*` counters and the `serve.latency.cycles` histogram are
/// populated.
pub fn run_service(
    device: &Q100Device<'_>,
    tenants: &[TenantSpec],
    policy: &ServePolicy,
    seed: u64,
    total: usize,
    sink: Option<&mut dyn TraceSink>,
    registry: Option<&Registry>,
) -> ServeReport {
    run_service_on(device, tenants, policy, seed, total, sink, registry, &Serial)
}

/// [`run_service`] with an explicit phase-1 [`Parallelism`]. The
/// executor only affects wall-clock: the report is byte-identical for
/// any implementation.
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
pub fn run_service_on(
    device: &Q100Device<'_>,
    tenants: &[TenantSpec],
    policy: &ServePolicy,
    seed: u64,
    total: usize,
    mut sink: Option<&mut dyn TraceSink>,
    registry: Option<&Registry>,
    par: &dyn Parallelism,
) -> ServeReport {
    let requests = generate_requests(seed, tenants, total);
    let max_attempts = policy.max_attempts.max(1);

    // Phase 1: cost resolution (the only expensive part, parallel).
    let (costs, cost_attempts, cost_unique_classes) = resolve_costs(device, &requests, policy, par);

    // Phase 2: policy replay on the virtual clock, pure table lookups.
    let mut breaker = CircuitBreaker::new(policy.breaker_threshold, policy.breaker_cooldown_cycles);

    // The device runs admitted requests FIFO; `device_free` is when it
    // next idles, `inflight` holds the release cycles of admitted
    // requests still occupying queue slots.
    let mut device_free = 0u64;
    let mut inflight: Vec<u64> = Vec::new();

    let mut outcomes = Vec::with_capacity(requests.len());
    let mut fallback = FallbackAccount::default();
    let mut retries = 0u64;
    let (mut shed_queue_full, mut shed_breaker) = (0u64, 0u64);

    for (i, req) in requests.iter().enumerate() {
        let now = req.arrival;
        inflight.retain(|&free| free > now);

        let software_cycles = device.software_cycles(req.query);
        let software = device.queries()[req.query].software;

        let (disposition, backend, finish, attempts) = if !breaker.admits(now) {
            (
                Disposition::Shed(ShedReason::BreakerOpen),
                Backend::Software,
                now + software_cycles,
                0,
            )
        } else if inflight.len() >= policy.queue_depth {
            (Disposition::Shed(ShedReason::QueueFull), Backend::Software, now + software_cycles, 0)
        } else {
            let start = now.max(device_free);
            if start >= req.deadline {
                // The queue alone blows the deadline: don't waste
                // device time, answer late in software. The healthy
                // device is not to blame, so the breaker is untouched.
                inflight.push(req.deadline);
                (Disposition::DeadlineMissed, Backend::Software, req.deadline + software_cycles, 0)
            } else {
                // Attempt loop on the device, replayed against the
                // phase-1 cost matrix.
                let mut t = start;
                let mut attempts = 0u32;
                let mut success = None;
                let mut deadline_stop = false;
                loop {
                    attempts += 1;
                    let enc = costs[i * max_attempts as usize + (attempts as usize - 1)];
                    debug_assert_ne!(enc, COST_UNRESOLVED, "phase 1 must cover every attempt");
                    if enc != COST_FAILED {
                        success = Some(enc);
                        break;
                    }
                    t += policy.fail_cost_cycles;
                    if attempts >= max_attempts {
                        break;
                    }
                    if t >= req.deadline {
                        deadline_stop = true;
                        break;
                    }
                    t += policy.backoff_base_cycles << (attempts - 1).min(32);
                    if t >= req.deadline {
                        deadline_stop = true;
                        break;
                    }
                }
                retries += u64::from(attempts - 1);
                match success {
                    Some(cycles) if t + cycles <= req.deadline => {
                        let finish = t + cycles;
                        device_free = finish;
                        inflight.push(finish);
                        breaker.on_success();
                        (Disposition::Completed, Backend::Q100, finish, attempts)
                    }
                    Some(_) => {
                        // The run would finish past the deadline: abort
                        // it at the deadline and answer in software.
                        device_free = req.deadline;
                        inflight.push(req.deadline);
                        breaker.on_success();
                        (
                            Disposition::DeadlineMissed,
                            Backend::Software,
                            req.deadline + software_cycles,
                            attempts,
                        )
                    }
                    None => {
                        device_free = t;
                        inflight.push(t);
                        breaker.on_failure(t);
                        let disposition = if deadline_stop {
                            Disposition::DeadlineMissed
                        } else {
                            Disposition::Degraded
                        };
                        (disposition, Backend::Software, t + software_cycles, attempts)
                    }
                }
            }
        };

        match disposition {
            Disposition::Shed(ShedReason::QueueFull) => shed_queue_full += 1,
            Disposition::Shed(ShedReason::BreakerOpen) => shed_breaker += 1,
            _ => {}
        }
        if backend == Backend::Software {
            fallback.absorb(&software);
        }
        if let Some(sink) = sink.as_deref_mut() {
            sink.record(TraceEvent::ServeRequest {
                cycle: req.arrival,
                end_cycle: finish,
                tenant: req.tenant as u16,
                query: req.query as u16,
                disposition: disposition.code(),
            });
        }
        outcomes.push(RequestOutcome {
            tenant: req.tenant,
            seq: req.seq,
            query: req.query,
            arrival: req.arrival,
            finish,
            disposition,
            backend,
            attempts,
        });
    }

    // Aggregation: one pass over the outcomes feeds the per-tenant
    // counters, the latency vectors (pre-sized from the per-tenant
    // request counts), and a locally batched latency histogram merged
    // into the registry once — no per-outcome registry locking, no
    // per-tenant re-scans.
    let mut tenant_counts = vec![0usize; tenants.len()];
    for req in &requests {
        tenant_counts[req.tenant] += 1;
    }
    let mut t_shed = vec![0u64; tenants.len()];
    let mut t_completed = vec![0u64; tenants.len()];
    let mut t_degraded = vec![0u64; tenants.len()];
    let mut t_missed = vec![0u64; tenants.len()];
    let mut t_latencies: Vec<Vec<u64>> =
        tenant_counts.iter().map(|&c| Vec::with_capacity(c)).collect();
    let mut latency_hist = registry.map(|_| Histogram::new(&DEFAULT_BOUNDS));
    for o in &outcomes {
        let latency = o.finish - o.arrival;
        t_latencies[o.tenant].push(latency);
        match o.disposition {
            Disposition::Completed => t_completed[o.tenant] += 1,
            Disposition::Shed(_) => t_shed[o.tenant] += 1,
            Disposition::Degraded => t_degraded[o.tenant] += 1,
            Disposition::DeadlineMissed => t_missed[o.tenant] += 1,
        }
        if let Some(h) = latency_hist.as_mut() {
            h.observe(latency as f64);
        }
    }

    let shed = shed_queue_full + shed_breaker;
    let completed: u64 = t_completed.iter().sum();
    let degraded: u64 = t_degraded.iter().sum();
    let deadline_missed: u64 = t_missed.iter().sum();
    let offered = outcomes.len() as u64;
    let admitted = offered - shed;

    let tenant_reports = tenants
        .iter()
        .enumerate()
        .map(|(idx, spec)| {
            let latencies = &mut t_latencies[idx];
            latencies.sort_unstable();
            TenantReport {
                name: spec.name.clone(),
                offered: latencies.len() as u64,
                admitted: latencies.len() as u64 - t_shed[idx],
                shed: t_shed[idx],
                completed: t_completed[idx],
                degraded: t_degraded[idx],
                deadline_missed: t_missed[idx],
                p50_latency_cycles: percentile(latencies, 50.0),
                p99_latency_cycles: percentile(latencies, 99.0),
            }
        })
        .collect();

    if let Some(reg) = registry {
        reg.inc("serve.offered", offered);
        reg.inc("serve.admitted", admitted);
        reg.inc("serve.shed", shed);
        reg.inc("serve.shed.queue_full", shed_queue_full);
        reg.inc("serve.shed.breaker", shed_breaker);
        reg.inc("serve.completed", completed);
        reg.inc("serve.degraded", degraded);
        reg.inc("serve.deadline_missed", deadline_missed);
        reg.inc("serve.retries", retries);
        reg.inc("serve.fallback.runs", fallback.runs);
        reg.inc("serve.breaker.opens", breaker.opens());
        reg.inc("serve.cost.attempts", cost_attempts);
        reg.inc("serve.cost.unique_classes", cost_unique_classes);
        if let Some(h) = &latency_hist {
            reg.merge_histogram("serve.latency.cycles", h);
        }
    }

    ServeReport {
        offered,
        admitted,
        shed,
        shed_queue_full,
        shed_breaker,
        completed,
        degraded,
        deadline_missed,
        retries,
        breaker_opens: breaker.opens(),
        cost_attempts,
        cost_unique_classes,
        fallback,
        tenants: tenant_reports,
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let s = [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(percentile(&s, 50.0), 50);
        assert_eq!(percentile(&s, 99.0), 100);
        assert_eq!(percentile(&s, 100.0), 100);
        assert_eq!(percentile(&[7], 99.0), 7);
        assert_eq!(percentile(&[], 50.0), 0);
    }
}
