//! The deterministic serving loop.

use q100_dbms::FallbackAccount;
use q100_trace::{Registry, TraceEvent, TraceSink};

use crate::device::Q100Device;
use crate::mix_seed;
use crate::policy::{CircuitBreaker, ServePolicy};
use crate::tenant::{generate_requests, TenantSpec};
use q100_core::FaultScenario;

/// Why an arrival was shed before reaching the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The admitted-work queue was at the policy's depth.
    QueueFull,
    /// The circuit breaker was open.
    BreakerOpen,
}

/// The final fate of one request. Every request gets exactly one — the
/// service never drops a request silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Ran on the Q100 and finished inside its deadline.
    Completed,
    /// Never admitted; answered by the software baseline.
    Shed(ShedReason),
    /// Admitted, but the device could not produce an answer (attempts
    /// exhausted or unschedulable); answered by the software baseline.
    Degraded,
    /// Admitted, but its deadline expired before the device could
    /// finish; answered (late) by the software baseline.
    DeadlineMissed,
}

impl Disposition {
    /// Stable numeric code used in trace events: 0 = completed,
    /// 1 = shed, 2 = degraded, 3 = deadline missed.
    #[must_use]
    pub fn code(self) -> u16 {
        match self {
            Disposition::Completed => 0,
            Disposition::Shed(_) => 1,
            Disposition::Degraded => 2,
            Disposition::DeadlineMissed => 3,
        }
    }
}

/// Which engine produced the request's answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The Q100 device.
    Q100,
    /// The software baseline (MonetDB-style cost model).
    Software,
}

/// The audited outcome of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestOutcome {
    /// Index into the tenant table.
    pub tenant: usize,
    /// Per-tenant sequence number.
    pub seq: u32,
    /// Index into the device's query table.
    pub query: usize,
    /// Arrival cycle.
    pub arrival: u64,
    /// Cycle the answer was produced (on whichever backend).
    pub finish: u64,
    /// Final disposition.
    pub disposition: Disposition,
    /// Backend that produced the answer.
    pub backend: Backend,
    /// Q100 attempts made (0 for shed requests).
    pub attempts: u32,
}

/// Per-tenant slice of the report.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Requests offered by this tenant.
    pub offered: u64,
    /// Requests admitted past the shedding policies.
    pub admitted: u64,
    /// Requests shed (queue full or breaker open).
    pub shed: u64,
    /// Requests completed on the Q100 inside their deadline.
    pub completed: u64,
    /// Requests degraded to the software baseline.
    pub degraded: u64,
    /// Requests whose deadline expired.
    pub deadline_missed: u64,
    /// Median latency (arrival to answer) in cycles, nearest-rank.
    pub p50_latency_cycles: u64,
    /// 99th-percentile latency in cycles, nearest-rank.
    pub p99_latency_cycles: u64,
}

/// The full, deterministic record of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Requests offered (equals `outcomes.len()`).
    pub offered: u64,
    /// Requests admitted past the shedding policies.
    pub admitted: u64,
    /// Requests shed before reaching the device.
    pub shed: u64,
    /// Shed because the queue was at depth.
    pub shed_queue_full: u64,
    /// Shed because the breaker was open.
    pub shed_breaker: u64,
    /// Admitted requests completed on the Q100 inside their deadline.
    pub completed: u64,
    /// Admitted requests degraded to the software baseline.
    pub degraded: u64,
    /// Admitted requests whose deadline expired.
    pub deadline_missed: u64,
    /// Q100 retry attempts beyond each request's first.
    pub retries: u64,
    /// Times the circuit breaker opened.
    pub breaker_opens: u64,
    /// Aggregate software-baseline work absorbed by fallbacks.
    pub fallback: FallbackAccount,
    /// Per-tenant slices, in tenant-table order.
    pub tenants: Vec<TenantReport>,
    /// Every request's audited outcome, in arrival order.
    pub outcomes: Vec<RequestOutcome>,
}

impl ServeReport {
    /// Proves the no-silent-drop accounting:
    ///
    /// * `offered == outcomes.len() == admitted + shed`
    /// * `admitted == completed + degraded + deadline_missed`
    /// * `shed == shed_queue_full + shed_breaker`
    /// * every `finish >= arrival`
    /// * per-tenant counters sum to the aggregate ones
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.offered != self.outcomes.len() as u64 {
            return Err(format!(
                "offered {} != recorded outcomes {}",
                self.offered,
                self.outcomes.len()
            ));
        }
        if self.offered != self.admitted + self.shed {
            return Err(format!(
                "offered {} != admitted {} + shed {}",
                self.offered, self.admitted, self.shed
            ));
        }
        if self.admitted != self.completed + self.degraded + self.deadline_missed {
            return Err(format!(
                "admitted {} != completed {} + degraded {} + deadline_missed {}",
                self.admitted, self.completed, self.degraded, self.deadline_missed
            ));
        }
        if self.shed != self.shed_queue_full + self.shed_breaker {
            return Err(format!(
                "shed {} != queue_full {} + breaker {}",
                self.shed, self.shed_queue_full, self.shed_breaker
            ));
        }
        if let Some(o) = self.outcomes.iter().find(|o| o.finish < o.arrival) {
            return Err(format!(
                "tenant {} seq {} finishes at {} before arriving at {}",
                o.tenant, o.seq, o.finish, o.arrival
            ));
        }
        let tenant_offered: u64 = self.tenants.iter().map(|t| t.offered).sum();
        if tenant_offered != self.offered {
            return Err(format!(
                "per-tenant offered sums to {tenant_offered}, aggregate is {}",
                self.offered
            ));
        }
        Ok(())
    }
}

/// Nearest-rank percentile of an already-sorted sample; 0 when empty.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Runs the serving loop: `total` requests generated from
/// `(seed, tenants)` via [`generate_requests`], pushed through `device`
/// under `policy`. Everything — arrivals, faults, backoff, deadlines —
/// lives on one virtual clock in simulated device cycles, so the
/// returned [`ServeReport`] is byte-identical for identical inputs
/// regardless of thread count or wall-clock timing.
///
/// Each arrival is disposed of in order:
///
/// 1. **Breaker** — an open breaker sheds the request to software.
/// 2. **Admission** — more than `queue_depth` admitted requests still
///    in flight sheds it to software.
/// 3. **Deadline at dispatch** — if the device queue alone already
///    pushes the start past the deadline, the request is counted as a
///    deadline miss and answered (late) by software.
/// 4. **Attempts** — up to `max_attempts` Q100 estimates, each against
///    a fresh [`FaultScenario`] derived from the request seed and the
///    attempt number, with exponential backoff between attempts.
///    Success inside the deadline completes the request; success past
///    it is aborted at the deadline (miss); exhausted attempts or an
///    unschedulable degraded mix degrade it to software and feed the
///    circuit breaker.
///
/// When `sink` is given, every request emits a
/// [`TraceEvent::ServeRequest`] slice; when `registry` is given, the
/// `serve.*` counters and the `serve.latency.cycles` histogram are
/// populated.
#[allow(clippy::too_many_lines)]
pub fn run_service(
    device: &Q100Device<'_>,
    tenants: &[TenantSpec],
    policy: &ServePolicy,
    seed: u64,
    total: usize,
    mut sink: Option<&mut dyn TraceSink>,
    registry: Option<&Registry>,
) -> ServeReport {
    let requests = generate_requests(seed, tenants, total);
    let mut breaker = CircuitBreaker::new(policy.breaker_threshold, policy.breaker_cooldown_cycles);
    let max_attempts = policy.max_attempts.max(1);

    // The device runs admitted requests FIFO; `device_free` is when it
    // next idles, `inflight` holds the release cycles of admitted
    // requests still occupying queue slots.
    let mut device_free = 0u64;
    let mut inflight: Vec<u64> = Vec::new();

    let mut outcomes = Vec::with_capacity(requests.len());
    let mut fallback = FallbackAccount::default();
    let mut retries = 0u64;
    let (mut shed_queue_full, mut shed_breaker) = (0u64, 0u64);

    for req in &requests {
        let now = req.arrival;
        inflight.retain(|&free| free > now);

        let software_cycles = device.software_cycles(req.query);
        let software = device.queries()[req.query].software;

        let (disposition, backend, finish, attempts) = if !breaker.admits(now) {
            (
                Disposition::Shed(ShedReason::BreakerOpen),
                Backend::Software,
                now + software_cycles,
                0,
            )
        } else if inflight.len() >= policy.queue_depth {
            (Disposition::Shed(ShedReason::QueueFull), Backend::Software, now + software_cycles, 0)
        } else {
            let start = now.max(device_free);
            if start >= req.deadline {
                // The queue alone blows the deadline: don't waste
                // device time, answer late in software. The healthy
                // device is not to blame, so the breaker is untouched.
                inflight.push(req.deadline);
                (Disposition::DeadlineMissed, Backend::Software, req.deadline + software_cycles, 0)
            } else {
                // Attempt loop on the device.
                let mut t = start;
                let mut attempts = 0u32;
                let mut success = None;
                let mut deadline_stop = false;
                loop {
                    attempts += 1;
                    let scenario = FaultScenario::generate(
                        mix_seed(req.seed, &[u64::from(attempts)]),
                        policy.fault_rate,
                        &device.config().mix,
                    );
                    match device.service_cycles(req.query, &scenario) {
                        Ok(cycles) => {
                            success = Some(cycles);
                            break;
                        }
                        Err(_) => {
                            t += policy.fail_cost_cycles;
                            if attempts >= max_attempts {
                                break;
                            }
                            if t >= req.deadline {
                                deadline_stop = true;
                                break;
                            }
                            t += policy.backoff_base_cycles << (attempts - 1).min(32);
                            if t >= req.deadline {
                                deadline_stop = true;
                                break;
                            }
                        }
                    }
                }
                retries += u64::from(attempts - 1);
                match success {
                    Some(cycles) if t + cycles <= req.deadline => {
                        let finish = t + cycles;
                        device_free = finish;
                        inflight.push(finish);
                        breaker.on_success();
                        (Disposition::Completed, Backend::Q100, finish, attempts)
                    }
                    Some(_) => {
                        // The run would finish past the deadline: abort
                        // it at the deadline and answer in software.
                        device_free = req.deadline;
                        inflight.push(req.deadline);
                        breaker.on_success();
                        (
                            Disposition::DeadlineMissed,
                            Backend::Software,
                            req.deadline + software_cycles,
                            attempts,
                        )
                    }
                    None => {
                        device_free = t;
                        inflight.push(t);
                        breaker.on_failure(t);
                        let disposition = if deadline_stop {
                            Disposition::DeadlineMissed
                        } else {
                            Disposition::Degraded
                        };
                        (disposition, Backend::Software, t + software_cycles, attempts)
                    }
                }
            }
        };

        match disposition {
            Disposition::Shed(ShedReason::QueueFull) => shed_queue_full += 1,
            Disposition::Shed(ShedReason::BreakerOpen) => shed_breaker += 1,
            _ => {}
        }
        if backend == Backend::Software {
            fallback.absorb(&software);
        }
        if let Some(sink) = sink.as_deref_mut() {
            sink.record(TraceEvent::ServeRequest {
                cycle: req.arrival,
                end_cycle: finish,
                tenant: req.tenant as u16,
                query: req.query as u16,
                disposition: disposition.code(),
            });
        }
        outcomes.push(RequestOutcome {
            tenant: req.tenant,
            seq: req.seq,
            query: req.query,
            arrival: req.arrival,
            finish,
            disposition,
            backend,
            attempts,
        });
    }

    let count = |pred: &dyn Fn(&RequestOutcome) -> bool| -> u64 {
        outcomes.iter().filter(|o| pred(o)).count() as u64
    };
    let shed = shed_queue_full + shed_breaker;
    let completed = count(&|o| o.disposition == Disposition::Completed);
    let degraded = count(&|o| o.disposition == Disposition::Degraded);
    let deadline_missed = count(&|o| o.disposition == Disposition::DeadlineMissed);
    let offered = outcomes.len() as u64;
    let admitted = offered - shed;

    let tenant_reports = tenants
        .iter()
        .enumerate()
        .map(|(idx, spec)| {
            let mine: Vec<&RequestOutcome> = outcomes.iter().filter(|o| o.tenant == idx).collect();
            let mut latencies: Vec<u64> = mine.iter().map(|o| o.finish - o.arrival).collect();
            latencies.sort_unstable();
            let shed_here =
                mine.iter().filter(|o| matches!(o.disposition, Disposition::Shed(_))).count()
                    as u64;
            TenantReport {
                name: spec.name.clone(),
                offered: mine.len() as u64,
                admitted: mine.len() as u64 - shed_here,
                shed: shed_here,
                completed: mine.iter().filter(|o| o.disposition == Disposition::Completed).count()
                    as u64,
                degraded: mine.iter().filter(|o| o.disposition == Disposition::Degraded).count()
                    as u64,
                deadline_missed: mine
                    .iter()
                    .filter(|o| o.disposition == Disposition::DeadlineMissed)
                    .count() as u64,
                p50_latency_cycles: percentile(&latencies, 50.0),
                p99_latency_cycles: percentile(&latencies, 99.0),
            }
        })
        .collect();

    if let Some(reg) = registry {
        reg.inc("serve.offered", offered);
        reg.inc("serve.admitted", admitted);
        reg.inc("serve.shed", shed);
        reg.inc("serve.shed.queue_full", shed_queue_full);
        reg.inc("serve.shed.breaker", shed_breaker);
        reg.inc("serve.completed", completed);
        reg.inc("serve.degraded", degraded);
        reg.inc("serve.deadline_missed", deadline_missed);
        reg.inc("serve.retries", retries);
        reg.inc("serve.fallback.runs", fallback.runs);
        reg.inc("serve.breaker.opens", breaker.opens());
        for o in &outcomes {
            reg.observe("serve.latency.cycles", (o.finish - o.arrival) as f64);
        }
    }

    ServeReport {
        offered,
        admitted,
        shed,
        shed_queue_full,
        shed_breaker,
        completed,
        degraded,
        deadline_missed,
        retries,
        breaker_opens: breaker.opens(),
        fallback,
        tenants: tenant_reports,
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let s = [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(percentile(&s, 50.0), 50);
        assert_eq!(percentile(&s, 99.0), 100);
        assert_eq!(percentile(&s, 100.0), 100);
        assert_eq!(percentile(&[7], 99.0), 7);
        assert_eq!(percentile(&[], 50.0), 0);
    }
}
