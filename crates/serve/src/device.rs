//! The served device: a Q100 design plus the query table it serves.

use q100_core::{
    estimate_service_cycles, FaultScenario, FunctionalRun, PlanCache, QueryGraph, Result,
    ScheduleCache, SimConfig, FREQUENCY_MHZ,
};
use q100_dbms::SoftwareCost;

/// One query the service can run: its spatial-instruction graph, the
/// functional run (data volumes drive the timing model), and the
/// measured software-baseline cost used when the request falls back.
#[derive(Debug, Clone)]
pub struct ServiceQuery<'w> {
    /// Display name (e.g. `"q6"`).
    pub name: String,
    /// The compiled spatial-instruction graph.
    pub graph: &'w QueryGraph,
    /// Functional run of `graph` against the serving catalog.
    pub functional: &'w FunctionalRun,
    /// Software-baseline cost of the same query (the degradation path).
    pub software: SoftwareCost,
}

/// A Q100 design wrapped behind a fallible cycle-estimate interface,
/// owning its own bounded schedule/plan caches so repeated requests for
/// the same query are cheap.
#[derive(Debug)]
pub struct Q100Device<'w> {
    config: SimConfig,
    queries: Vec<ServiceQuery<'w>>,
    sched_cache: ScheduleCache,
    plans: PlanCache,
    baseline_cycles: Vec<u64>,
}

impl<'w> Q100Device<'w> {
    /// Builds a device for `config`, validating it and precomputing the
    /// fault-free baseline cycle count of every query (this also warms
    /// the schedule/plan caches, so serving-time estimates only pay for
    /// fault-specific rescheduling).
    ///
    /// # Errors
    ///
    /// Returns a [`q100_core::CoreError`] when the config is invalid or
    /// any query cannot be scheduled on the healthy mix.
    pub fn new(config: SimConfig, queries: Vec<ServiceQuery<'w>>) -> Result<Self> {
        config.validate()?;
        let sched_cache = ScheduleCache::default();
        let plans = PlanCache::default();
        let empty = FaultScenario { faults: Vec::new() };
        let mut baseline_cycles = Vec::with_capacity(queries.len());
        for (tag, q) in queries.iter().enumerate() {
            baseline_cycles.push(estimate_service_cycles(
                q.graph,
                q.functional,
                &config,
                &empty,
                &sched_cache,
                &plans,
                tag as u64,
            )?);
        }
        Ok(Q100Device { config, queries, sched_cache, plans, baseline_cycles })
    }

    /// Device cycles to run query `query` under `scenario`. An empty
    /// scenario returns the memoized fault-free baseline (the resilience
    /// layer guarantees it is byte-identical to a fresh estimate).
    ///
    /// # Errors
    ///
    /// Returns [`q100_core::CoreError::Unschedulable`] when the faulted
    /// mix can no longer host the query — the caller's signal to fall
    /// back to the software baseline.
    pub fn service_cycles(&self, query: usize, scenario: &FaultScenario) -> Result<u64> {
        if scenario.is_empty() {
            return Ok(self.baseline_cycles[query]);
        }
        let q = &self.queries[query];
        estimate_service_cycles(
            q.graph,
            q.functional,
            &self.config,
            scenario,
            &self.sched_cache,
            &self.plans,
            query as u64,
        )
    }

    /// Cycles the software baseline needs for `query`, expressed on the
    /// device clock so the two paths share one timeline.
    #[must_use]
    pub fn software_cycles(&self, query: usize) -> u64 {
        self.queries[query].software.service_cycles(FREQUENCY_MHZ)
    }

    /// The device configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The query table.
    #[must_use]
    pub fn queries(&self) -> &[ServiceQuery<'w>] {
        &self.queries
    }

    /// The memoized fault-free baseline for one query.
    #[must_use]
    pub fn baseline_cycles(&self, query: usize) -> u64 {
        self.baseline_cycles[query]
    }

    /// Mean fault-free baseline across the query table (useful for
    /// scaling load levels and policy knobs to the workload).
    #[must_use]
    pub fn mean_baseline_cycles(&self) -> u64 {
        if self.baseline_cycles.is_empty() {
            return 0;
        }
        let sum: u64 = self.baseline_cycles.iter().sum();
        sum / self.baseline_cycles.len() as u64
    }
}
