//! The served device: a Q100 design plus the query table it serves.

use q100_core::{
    estimate_class_cycles, estimate_service_cycles, CostKey, FaultScenario, FunctionalRun,
    PlanCache, QueryGraph, Result, ScenarioClassifier, ScheduleCache, ServiceCost,
    ServiceCostCache, SimConfig, FREQUENCY_MHZ,
};
use q100_dbms::SoftwareCost;

/// One query the service can run: its spatial-instruction graph, the
/// functional run (data volumes drive the timing model), and the
/// measured software-baseline cost used when the request falls back.
#[derive(Debug, Clone)]
pub struct ServiceQuery<'w> {
    /// Display name (e.g. `"q6"`).
    pub name: String,
    /// The compiled spatial-instruction graph.
    pub graph: &'w QueryGraph,
    /// Functional run of `graph` against the serving catalog.
    pub functional: &'w FunctionalRun,
    /// Software-baseline cost of the same query (the degradation path).
    pub software: SoftwareCost,
}

/// One resolved cost probe (see [`Q100Device::probe_cost`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostProbe {
    /// The canonical cost key the scenario collapsed to.
    pub key: CostKey,
    /// Stall cycles to add on top of the key's memoized cost.
    pub stall_extra: u64,
    /// `Some` when the cost is already decided without consulting the
    /// cost cache: the fault-free baseline, or an infeasible class.
    pub known: Option<ServiceCost>,
}

/// A Q100 design wrapped behind a fallible cycle-estimate interface,
/// owning its own bounded schedule/plan/cost caches so repeated
/// requests for the same query are cheap.
#[derive(Debug)]
pub struct Q100Device<'w> {
    config: SimConfig,
    queries: Vec<ServiceQuery<'w>>,
    sched_cache: ScheduleCache,
    plans: PlanCache,
    baseline_cycles: Vec<u64>,
    classifiers: Vec<ScenarioClassifier>,
    healthy_keys: Vec<CostKey>,
    costs: ServiceCostCache,
}

impl<'w> Q100Device<'w> {
    /// Builds a device for `config`, validating it and precomputing the
    /// fault-free baseline cycle count of every query (this also warms
    /// the schedule/plan caches and seeds the cost cache with each
    /// query's healthy class, so serving-time estimates only pay for
    /// fault-specific simulation).
    ///
    /// # Errors
    ///
    /// Returns a [`q100_core::CoreError`] when the config is invalid or
    /// any query cannot be scheduled on the healthy mix.
    pub fn new(config: SimConfig, queries: Vec<ServiceQuery<'w>>) -> Result<Self> {
        config.validate()?;
        let sched_cache = ScheduleCache::default();
        let plans = PlanCache::default();
        let empty = FaultScenario { faults: Vec::new() };
        let mut baseline_cycles = Vec::with_capacity(queries.len());
        for (tag, q) in queries.iter().enumerate() {
            baseline_cycles.push(estimate_service_cycles(
                q.graph,
                q.functional,
                &config,
                &empty,
                &sched_cache,
                &plans,
                tag as u64,
            )?);
        }
        // Seed the cost cache with the canonical healthy class of every
        // query: scenarios whose faults are invisible to the simulator
        // (masked derates, clamped-away kills, stall-only scenarios)
        // collapse onto these keys and never simulate. The stats reset
        // keeps seeded entries out of the reported miss counts.
        let costs = ServiceCostCache::new();
        let mut classifiers = Vec::with_capacity(queries.len());
        let mut healthy_keys = Vec::with_capacity(queries.len());
        for (tag, q) in queries.iter().enumerate() {
            let classifier = ScenarioClassifier::new(q.graph, &config);
            let class = classifier.classify(
                &empty,
                q.graph,
                &q.functional.profile,
                config.scheduler,
                &sched_cache,
                &plans,
                tag as u64,
            );
            costs.insert(tag as u64, class.key, ServiceCost::Cycles(baseline_cycles[tag]));
            healthy_keys.push(class.key);
            classifiers.push(classifier);
        }
        costs.reset_stats();
        Ok(Q100Device {
            config,
            queries,
            sched_cache,
            plans,
            baseline_cycles,
            classifiers,
            healthy_keys,
            costs,
        })
    }

    /// Device cycles to run query `query` under `scenario`. An empty
    /// scenario returns the memoized fault-free baseline (the resilience
    /// layer guarantees it is byte-identical to a fresh estimate).
    ///
    /// # Errors
    ///
    /// Returns [`q100_core::CoreError::Unschedulable`] when the faulted
    /// mix can no longer host the query — the caller's signal to fall
    /// back to the software baseline.
    pub fn service_cycles(&self, query: usize, scenario: &FaultScenario) -> Result<u64> {
        if scenario.is_empty() {
            return Ok(self.baseline_cycles[query]);
        }
        let q = &self.queries[query];
        estimate_service_cycles(
            q.graph,
            q.functional,
            &self.config,
            scenario,
            &self.sched_cache,
            &self.plans,
            query as u64,
        )
    }

    /// Canonicalizes `scenario` against `query` without simulating: the
    /// returned probe either carries the decided cost (fault-free
    /// baseline, infeasible class) or the [`CostKey`] to resolve via
    /// [`Q100Device::cost_cache`] / [`Q100Device::class_cost`], plus
    /// the stall cycles to add on top of the keyed cost.
    #[must_use]
    pub fn probe_cost(&self, query: usize, scenario: &FaultScenario) -> CostProbe {
        if scenario.is_empty() {
            return CostProbe {
                key: self.healthy_keys[query],
                stall_extra: 0,
                known: Some(ServiceCost::Cycles(self.baseline_cycles[query])),
            };
        }
        let q = &self.queries[query];
        let class = self.classifiers[query].classify(
            scenario,
            q.graph,
            &q.functional.profile,
            self.config.scheduler,
            &self.sched_cache,
            &self.plans,
            query as u64,
        );
        let known = if class.feasible { None } else { Some(ServiceCost::Failed) };
        CostProbe { key: class.key, stall_extra: class.stall_extra(), known }
    }

    /// Simulates the cost of one canonical class (a cost-cache miss).
    /// Pure in `(query, key)` and safe to call from worker threads.
    #[must_use]
    pub fn class_cost(&self, query: usize, key: &CostKey) -> ServiceCost {
        let Some(plan) = self.classifiers[query].plan(&key.mix) else {
            return ServiceCost::Failed;
        };
        let q = &self.queries[query];
        match estimate_class_cycles(&plan, q.graph, q.functional, &self.config, key) {
            Ok(cycles) => ServiceCost::Cycles(cycles),
            Err(_) => ServiceCost::Failed,
        }
    }

    /// The scenario-keyed service-cost cache (tags are query indices).
    #[must_use]
    pub fn cost_cache(&self) -> &ServiceCostCache {
        &self.costs
    }

    /// The schedule cache backing plan compilation.
    #[must_use]
    pub fn sched_cache(&self) -> &ScheduleCache {
        &self.sched_cache
    }

    /// The compiled-plan cache.
    #[must_use]
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plans
    }

    /// Cycles the software baseline needs for `query`, expressed on the
    /// device clock so the two paths share one timeline.
    #[must_use]
    pub fn software_cycles(&self, query: usize) -> u64 {
        self.queries[query].software.service_cycles(FREQUENCY_MHZ)
    }

    /// The device configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The query table.
    #[must_use]
    pub fn queries(&self) -> &[ServiceQuery<'w>] {
        &self.queries
    }

    /// The memoized fault-free baseline for one query.
    #[must_use]
    pub fn baseline_cycles(&self, query: usize) -> u64 {
        self.baseline_cycles[query]
    }

    /// Mean fault-free baseline across the query table (useful for
    /// scaling load levels and policy knobs to the workload).
    #[must_use]
    pub fn mean_baseline_cycles(&self) -> u64 {
        if self.baseline_cycles.is_empty() {
            return 0;
        }
        let sum: u64 = self.baseline_cycles.iter().sum();
        sum / self.baseline_cycles.len() as u64
    }
}
