//! Chaos soak: 10k requests against a fault-injected device, proving
//! the no-silent-drop accounting and the graceful-degradation paths.

use q100_columnar::{Column, Table, Value};
use q100_core::{
    execute, AggOp, CmpOp, CoreError, Fault, FaultScenario, FunctionalRun, MemoryCatalog,
    QueryGraph, SimConfig, TileKind, TileMix,
};
use q100_dbms::SoftwareCost;
use q100_serve::{run_service, Disposition, Q100Device, ServePolicy, ServiceQuery, TenantSpec};
use q100_trace::{Registry, RingRecorder, TraceEvent};

fn catalog() -> MemoryCatalog {
    let rows = 2048i64;
    let ids: Vec<i64> = (0..rows).collect();
    let vals: Vec<i64> = (0..rows).map(|i| (i * 7) % 100).collect();
    let grps: Vec<i64> = (0..rows).map(|i| i % 8).collect();
    let t = Table::new(vec![
        Column::from_ints("id", ids),
        Column::from_ints("v", vals),
        Column::from_ints("g", grps),
    ])
    .unwrap();
    MemoryCatalog::new(vec![("t".into(), t)])
}

fn filter_graph() -> QueryGraph {
    let mut b = QueryGraph::builder("filter");
    let id = b.col_select_base("t", "id");
    let v = b.col_select_base("t", "v");
    let pred = b.bool_gen_const(v, CmpOp::Gt, Value::Int(50));
    let fid = b.col_filter(id, pred);
    let fv = b.col_filter(v, pred);
    let _ = b.stitch(&[fid, fv]);
    b.finish().unwrap()
}

fn agg_graph() -> QueryGraph {
    let mut b = QueryGraph::builder("agg");
    let v = b.col_select_base("t", "v");
    let g = b.col_select_base("t", "g");
    let _ = b.aggregate(AggOp::Sum, v, g);
    b.finish().unwrap()
}

struct Workload {
    graphs: Vec<QueryGraph>,
    functionals: Vec<FunctionalRun>,
}

impl Workload {
    fn new() -> Self {
        let cat = catalog();
        let graphs = vec![filter_graph(), agg_graph()];
        let functionals = graphs.iter().map(|g| execute(g, &cat).unwrap()).collect();
        Workload { graphs, functionals }
    }

    fn queries(&self) -> Vec<ServiceQuery<'_>> {
        self.graphs
            .iter()
            .zip(&self.functionals)
            .enumerate()
            .map(|(i, (g, f))| ServiceQuery {
                name: format!("q{i}"),
                graph: g,
                functional: f,
                software: SoftwareCost { runtime_ms: 0.05 + 0.02 * i as f64, energy_mj: 0.7 },
            })
            .collect()
    }
}

fn tenants(mean: u64) -> Vec<TenantSpec> {
    vec![
        TenantSpec {
            name: "interactive".into(),
            period_cycles: mean,
            deadline_cycles: 4 * mean,
            queries: vec![0],
            weight: 2,
        },
        TenantSpec {
            name: "analytics".into(),
            period_cycles: 2 * mean,
            deadline_cycles: 10 * mean,
            queries: vec![0, 1],
            weight: 1,
        },
        TenantSpec {
            name: "batch".into(),
            period_cycles: 4 * mean,
            deadline_cycles: 30 * mean,
            queries: vec![1],
            weight: 1,
        },
    ]
}

fn policy(mean: u64, fault_rate: f64) -> ServePolicy {
    ServePolicy {
        queue_depth: 8,
        max_attempts: 3,
        backoff_base_cycles: (mean / 8).max(1),
        fail_cost_cycles: (mean / 16).max(1),
        breaker_threshold: 4,
        breaker_cooldown_cycles: 8 * mean.max(1),
        fault_rate,
    }
}

/// The headline invariant check: a 10k-request soak at a 20% fault
/// rate, with every request accounted for. The device is a minimal
/// one-of-each mix so kill faults genuinely make queries unschedulable
/// and the degradation path gets real traffic (the redundant paper
/// designs shrug off single kills).
#[test]
fn chaos_soak_10k_requests_at_20_percent_faults_upholds_invariants() {
    let w = Workload::new();
    let device = Q100Device::new(SimConfig::new(TileMix::uniform(1)), w.queries()).unwrap();
    let mean = device.mean_baseline_cycles();
    assert!(mean > 0);

    let registry = Registry::new();
    let mut sink = RingRecorder::with_capacity(16);
    let report = run_service(
        &device,
        &tenants(mean),
        &policy(mean, 0.2),
        0xc0ffee,
        10_000,
        Some(&mut sink),
        Some(&registry),
    );

    report.check_invariants().unwrap();
    assert_eq!(report.offered, 10_000);
    // A 20% fault rate must exercise the degradation machinery: retries
    // happen and some requests end on the software baseline.
    assert!(report.retries > 0, "no retries at a 20% fault rate");
    assert!(report.degraded > 0, "no degradations at a 20% fault rate");
    assert!(report.completed > 0, "the device should still complete most work");
    assert_eq!(report.fallback.runs, (report.offered - report.completed));
    assert!(report.fallback.runtime_ms > 0.0);

    // The registry mirrors the report's accounting.
    assert_eq!(registry.counter("serve.offered"), report.offered);
    assert_eq!(registry.counter("serve.shed"), report.shed);
    assert_eq!(registry.counter("serve.degraded"), report.degraded);
    // Trace events carry the request slices.
    assert!(sink.events().iter().any(|e| matches!(e, TraceEvent::ServeRequest { .. })));

    // Per-tenant percentiles are populated and ordered.
    for t in &report.tenants {
        assert!(t.offered > 0, "tenant {} got no requests", t.name);
        assert!(t.p50_latency_cycles <= t.p99_latency_cycles);
    }
}

/// Byte-level determinism of the serving loop itself: identical inputs
/// yield identical reports (the experiments crate additionally proves
/// `--jobs` independence for the full study).
#[test]
fn soak_is_deterministic_in_its_inputs() {
    let w = Workload::new();
    let device = Q100Device::new(SimConfig::pareto(), w.queries()).unwrap();
    let mean = device.mean_baseline_cycles();
    let a = run_service(&device, &tenants(mean), &policy(mean, 0.2), 99, 500, None, None);
    let b = run_service(&device, &tenants(mean), &policy(mean, 0.2), 99, 500, None, None);
    assert_eq!(a, b);
    let c = run_service(&device, &tenants(mean), &policy(mean, 0.2), 100, 500, None, None);
    assert_ne!(a, c, "a different seed must change the outcome stream");
}

/// The cached cost path the two-phase engine relies on: for random
/// scenarios on both a redundant and a minimal device,
/// `probe_cost`/`class_cost` plus the stall carry reproduce
/// `service_cycles` exactly (or agree the scenario is unschedulable).
#[test]
fn probed_costs_match_direct_service_cycles() {
    let w = Workload::new();
    for config in [SimConfig::pareto(), SimConfig::new(TileMix::uniform(1))] {
        let device = Q100Device::new(config, w.queries()).unwrap();
        for query in 0..device.queries().len() {
            for seed in 0..64u64 {
                let scenario = FaultScenario::generate(seed, 0.3, &device.config().mix);
                let direct = device.service_cycles(query, &scenario);
                let probe = device.probe_cost(query, &scenario);
                let cost = match probe.known {
                    Some(c) => c,
                    None => match device.cost_cache().get(query as u64, &probe.key) {
                        Some(c) => c,
                        None => {
                            let c = device.class_cost(query, &probe.key);
                            device.cost_cache().insert(query as u64, probe.key, c);
                            c
                        }
                    },
                };
                match (direct, cost) {
                    (Ok(cycles), q100_core::ServiceCost::Cycles(c)) => {
                        assert_eq!(cycles, c + probe.stall_extra, "query {query} seed {seed}");
                    }
                    (Err(_), q100_core::ServiceCost::Failed) => {}
                    (d, c) => panic!("query {query} seed {seed}: direct {d:?} vs cached {c:?}"),
                }
            }
        }
    }
}

/// The `Unschedulable` path: on a minimal mix, a kill fault surfaces as
/// the typed error through the device, and the serving loop turns it
/// into a software degradation rather than a drop or a panic.
#[test]
fn unschedulable_mix_degrades_to_software() {
    let w = Workload::new();
    let device = Q100Device::new(SimConfig::new(TileMix::uniform(1)), w.queries()).unwrap();

    // Directly: killing the only ColFilter makes the filter query
    // unschedulable, and the error is typed.
    let kill = FaultScenario { faults: vec![Fault::TileKilled { kind: TileKind::ColFilter }] };
    match device.service_cycles(0, &kill) {
        Err(CoreError::Unschedulable { .. }) => {}
        other => panic!("expected Unschedulable, got {other:?}"),
    }

    // Through the loop: at fault rate 1.0 every attempt sees heavy
    // faults; kills on the uniform(1) mix force software fallbacks.
    let mean = device.mean_baseline_cycles();
    let report = run_service(&device, &tenants(mean), &policy(mean, 1.0), 7, 400, None, None);
    report.check_invariants().unwrap();
    assert!(report.degraded > 0, "kill faults on a minimal mix must degrade requests");
    assert!(report.fallback.runs > 0);
    assert!(
        report
            .outcomes
            .iter()
            .filter(|o| o.disposition == Disposition::Degraded)
            .all(|o| o.finish >= o.arrival),
        "every degraded request is answered, never dropped"
    );
}
