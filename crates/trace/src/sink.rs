//! The structured event sink the timing simulator emits into.
//!
//! Events are small `Copy` records stamped in *simulated cycles* — the
//! recorder never consults a clock, so the same simulation produces the
//! same event stream on every run, at any thread count. Tiles and
//! memory are identified by endpoint index (the simulator's
//! `ENDPOINTS` space: the eleven tile kinds plus memory last);
//! exporters resolve indices to names through a caller-supplied table.

/// One structured simulator event, stamped in simulated cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A temporal instruction began executing.
    TinstBegin {
        /// Stage index within the schedule.
        stage: u32,
        /// Global cycle at which the stage starts.
        cycle: u64,
        /// Spatial instructions resident in this stage.
        nodes: u32,
    },
    /// A temporal instruction finished (including the memory startup
    /// latency charged to the stage).
    TinstEnd {
        /// Stage index within the schedule.
        stage: u32,
        /// Global cycle at which the stage ends.
        cycle: u64,
    },
    /// Tile occupancy over one simulation quantum: `busy` instructions
    /// of tile kind `tile` moved data during `[cycle, cycle + dt)`.
    TileBusy {
        /// Endpoint index of the tile kind.
        tile: u16,
        /// Global cycle at the start of the quantum.
        cycle: u64,
        /// Quantum length in cycles.
        dt: u32,
        /// Number of busy instructions of this kind.
        busy: u16,
    },
    /// Aggregate memory traffic over one simulation quantum.
    MemSample {
        /// Global cycle at the start of the quantum.
        cycle: u64,
        /// Quantum length in cycles.
        dt: u32,
        /// Bytes read from memory during the quantum.
        read_bytes: f64,
        /// Bytes written to memory during the quantum.
        write_bytes: f64,
    },
    /// A NoC link reached a new peak bandwidth during a stage (sampled
    /// from the simulator's connection matrix at stage end).
    LinkPeak {
        /// Stage index that set the new peak.
        stage: u32,
        /// Global cycle at the end of the stage.
        cycle: u64,
        /// Source endpoint index.
        src: u16,
        /// Destination endpoint index.
        dst: u16,
        /// The new peak, in GB/s.
        gbps: f64,
    },
    /// Stream-buffer volumes of one stage: bytes filled from memory
    /// (base tables plus spilled intermediates re-read) and bytes
    /// spilled to memory (cross-stage intermediates plus final
    /// results).
    StageMem {
        /// Stage index.
        stage: u32,
        /// Global cycle at the start of the stage.
        cycle: u64,
        /// Bytes streamed in from memory.
        fill_bytes: u64,
        /// Bytes streamed out to memory.
        spill_bytes: u64,
    },
    /// A fault was injected into the simulated configuration by the
    /// resilience layer (`fault.injected`). Faults are applied before
    /// execution starts, so `cycle` is always 0 today; the field exists
    /// so online fault models can stamp mid-run injections later.
    FaultInjected {
        /// Global cycle at which the fault takes effect.
        cycle: u64,
        /// Fault taxonomy code (see `q100_core::resilience::Fault::code`):
        /// 0 = tile killed, 1 = tile derated, 2 = NoC derated,
        /// 3 = memory throttled, 4 = transient tinst stall.
        kind: u16,
        /// Endpoint index the fault applies to (tile kind index, the
        /// memory endpoint, or the tinst slot for stalls).
        endpoint: u16,
        /// Fault magnitude: a derating factor in `(0, 1]` for derates,
        /// instances removed for kills, or stall cycles for stalls.
        magnitude: f64,
    },
    /// The resilience executor rebuilt the tile mix and re-ran the
    /// scheduler after tile kills (`reschedule`).
    Reschedule {
        /// Global cycle at which rescheduling happened (0: before run).
        cycle: u64,
        /// Temporal-instruction count of the degraded schedule.
        stages: u32,
        /// Tile instances removed from the configured mix.
        tiles_lost: u32,
    },
    /// One simulation quantum executed with derating factors active
    /// (`degraded.quantum`). Programmatic consumers use this to measure
    /// how much of a run was spent degraded; the Chrome exporter skips
    /// it (one event per quantum would dwarf the other tracks).
    DegradedQuantum {
        /// Stage index within the schedule.
        stage: u32,
        /// Global cycle at the start of the quantum.
        cycle: u64,
        /// Quantum length in cycles.
        dt: u32,
    },
    /// One request's lifetime through the serving layer
    /// (`serve.request`): from arrival to final disposition on the
    /// service's virtual clock. The Chrome exporter renders it as a
    /// complete slice on a dedicated "Serving" process.
    ServeRequest {
        /// Arrival cycle on the service's virtual clock.
        cycle: u64,
        /// Cycle at which the request reached its final disposition.
        end_cycle: u64,
        /// Tenant index within the service's tenant table.
        tenant: u16,
        /// Query index within the service's query table.
        query: u16,
        /// Disposition code: 0 = completed on Q100, 1 = shed,
        /// 2 = degraded to software, 3 = deadline missed.
        disposition: u16,
    },
    /// Stall-blame cycles attributed during one simulation quantum,
    /// aggregated over the running stage's nodes. Emitted only when a
    /// [`BlameRecorder`](crate::analyze) rides along a traced run; the
    /// Chrome exporter renders one counter track per cause.
    BlameSample {
        /// Stage index within the schedule.
        stage: u32,
        /// Global cycle at the start of the quantum.
        cycle: u64,
        /// Quantum length in cycles.
        dt: u32,
        /// [`BlameCause`](crate::analyze::BlameCause) index.
        cause: u16,
        /// Blamed cycles (summed over the stage's nodes).
        cycles: f64,
    },
}

impl TraceEvent {
    /// The event's timestamp in simulated cycles.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::TinstBegin { cycle, .. }
            | TraceEvent::TinstEnd { cycle, .. }
            | TraceEvent::TileBusy { cycle, .. }
            | TraceEvent::MemSample { cycle, .. }
            | TraceEvent::LinkPeak { cycle, .. }
            | TraceEvent::StageMem { cycle, .. }
            | TraceEvent::FaultInjected { cycle, .. }
            | TraceEvent::Reschedule { cycle, .. }
            | TraceEvent::DegradedQuantum { cycle, .. }
            | TraceEvent::ServeRequest { cycle, .. }
            | TraceEvent::BlameSample { cycle, .. } => cycle,
        }
    }
}

/// Receives simulator events. Implementations must be cheap: the
/// simulator calls [`TraceSink::record`] from its per-quantum hot loop
/// whenever tracing is enabled.
pub trait TraceSink {
    /// Records one event.
    fn record(&mut self, event: TraceEvent);
}

/// A sink that drops everything. Exists so call sites can be written
/// against `&mut dyn TraceSink` unconditionally; the simulator itself
/// skips event construction entirely when no sink is attached.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: TraceEvent) {}
}

/// A bounded in-memory recorder: keeps the most recent `capacity`
/// events, counting (not storing) the overflow.
#[derive(Debug, Clone)]
pub struct RingRecorder {
    capacity: usize,
    buf: Vec<TraceEvent>,
    /// Index of the oldest event once the buffer has wrapped.
    head: usize,
    dropped: u64,
}

impl RingRecorder {
    /// Default capacity: generous for any single-query trace at the
    /// evaluation scale factors while bounding memory at ~32 MB.
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// A recorder holding at most [`Self::DEFAULT_CAPACITY`] events.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// A recorder holding at most `capacity` events (min 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingRecorder { capacity, buf: Vec::new(), head: 0, dropped: 0 }
    }

    /// Events recorded and still retained, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded (or everything was dropped).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted because the buffer was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Forgets all retained events and the drop count.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.dropped = 0;
    }
}

impl Default for RingRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink for RingRecorder {
    fn record(&mut self, event: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent::TinstEnd { stage: 0, cycle }
    }

    #[test]
    fn recorder_keeps_order_and_wraps() {
        let mut r = RingRecorder::with_capacity(3);
        assert!(r.is_empty());
        for c in 0..5 {
            r.record(ev(c));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let cycles: Vec<u64> = r.events().iter().map(TraceEvent::cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4], "oldest evicted first, order preserved");
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut s = NullSink;
        s.record(ev(1));
    }
}
