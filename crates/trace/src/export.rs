//! Exporters: Chrome `trace_event` JSON.
//!
//! [`chrome_trace_json`] renders recorded event streams in the Chrome
//! Trace Event format (the JSON array flavour), loadable in
//! `chrome://tracing` or [Perfetto](https://ui.perfetto.dev):
//!
//! * one **process per endpoint** (the eleven tile kinds plus memory,
//!   in the caller's name table order) and one extra process for the
//!   temporal-instruction timeline;
//! * one **thread per traced stream** (typically one stream per query),
//!   named after the stream;
//! * tile occupancy and memory bandwidth as **counter** tracks, tinsts
//!   as **complete** slices, link peaks and stage spill/fill volumes as
//!   **instant** events.
//!
//! Timestamps are simulated cycles rendered as microseconds (1 cycle =
//! 1 µs on the trace viewer's axis); no wall-clock is involved, so the
//! export is byte-stable for a given simulation.

use std::fmt::Write as _;

use crate::analyze::BlameCause;
use crate::metrics::{json_escape, json_num};
use crate::sink::TraceEvent;

/// One traced simulation: a name (shown as the thread name on every
/// endpoint process) and its recorded events in emission order.
#[derive(Debug, Clone)]
pub struct TraceStream {
    /// Display name, e.g. the query name.
    pub name: String,
    /// Events in emission (time) order.
    pub events: Vec<TraceEvent>,
}

fn push_event(out: &mut String, body: &str) {
    if !out.ends_with('[') {
        out.push(',');
    }
    out.push_str("\n  {");
    out.push_str(body);
    out.push('}');
}

/// Renders `streams` as a Chrome `trace_event` JSON document.
///
/// `endpoint_names` maps endpoint indices to display names, with
/// **memory last** (the simulator's `ENDPOINTS` convention); memory
/// bandwidth counters attach to that last process. `bpc_to_gbps`
/// converts bytes-per-cycle into GB/s for the bandwidth counter tracks
/// (pass `q100_core::bytes_per_cycle_to_gbps(1.0)`).
#[must_use]
pub fn chrome_trace_json(
    streams: &[TraceStream],
    endpoint_names: &[&str],
    bpc_to_gbps: f64,
) -> String {
    let tinst_pid = endpoint_names.len();
    let serve_pid = endpoint_names.len() + 1;
    let mem_pid = endpoint_names.len().saturating_sub(1);
    let mut out = String::from("{\n\"traceEvents\": [");

    // Process/thread name metadata.
    for (pid, name) in endpoint_names.iter().enumerate() {
        push_event(
            &mut out,
            &format!(
                "\"ph\": \"M\", \"name\": \"process_name\", \"pid\": {pid}, \"tid\": 0, \
                 \"args\": {{\"name\": \"{}\"}}",
                json_escape(name)
            ),
        );
    }
    push_event(
        &mut out,
        &format!(
            "\"ph\": \"M\", \"name\": \"process_name\", \"pid\": {tinst_pid}, \"tid\": 0, \
             \"args\": {{\"name\": \"Temporal instructions\"}}"
        ),
    );
    push_event(
        &mut out,
        &format!(
            "\"ph\": \"M\", \"name\": \"process_name\", \"pid\": {serve_pid}, \"tid\": 0, \
             \"args\": {{\"name\": \"Serving\"}}"
        ),
    );
    for (tid, stream) in streams.iter().enumerate() {
        for pid in 0..=serve_pid {
            push_event(
                &mut out,
                &format!(
                    "\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": {pid}, \"tid\": {tid}, \
                     \"args\": {{\"name\": \"{}\"}}",
                    json_escape(&stream.name)
                ),
            );
        }
    }

    for (tid, stream) in streams.iter().enumerate() {
        // Per-tile occupancy counters drop to zero when a busy run
        // ends; track the open run per endpoint.
        let mut open_run: Vec<Option<(u64, u16)>> = vec![None; endpoint_names.len()];
        let mut tinst_begin: Option<(u32, u64, u32)> = None;
        // (end_cycle, read, write) of the open memory-counter run.
        let mut mem_run: Option<u64> = None;
        // End cycle of the open per-cause blame counter run.
        let mut blame_run: [Option<u64>; BlameCause::COUNT] = [None; BlameCause::COUNT];

        for ev in &stream.events {
            match *ev {
                TraceEvent::TinstBegin { stage, cycle, nodes } => {
                    tinst_begin = Some((stage, cycle, nodes));
                }
                TraceEvent::TinstEnd { stage, cycle } => {
                    let (bstage, begin, nodes) = tinst_begin.take().unwrap_or((stage, cycle, 0));
                    push_event(
                        &mut out,
                        &format!(
                            "\"ph\": \"X\", \"name\": \"tinst {bstage}\", \"pid\": {tinst_pid}, \
                             \"tid\": {tid}, \"ts\": {begin}, \"dur\": {}, \
                             \"args\": {{\"sinsts\": {nodes}}}",
                            cycle.saturating_sub(begin)
                        ),
                    );
                }
                TraceEvent::TileBusy { tile, cycle, dt, busy } => {
                    let pid = usize::from(tile).min(endpoint_names.len().saturating_sub(1));
                    let run = &mut open_run[pid];
                    match run {
                        Some((end, value)) if *end == cycle && *value == busy => {
                            *end = cycle + u64::from(dt);
                        }
                        _ => {
                            if let Some((end, _)) = run.take() {
                                if end <= cycle {
                                    counter(&mut out, pid, tid, end, "occupancy", "busy", 0.0);
                                }
                            }
                            counter(
                                &mut out,
                                pid,
                                tid,
                                cycle,
                                "occupancy",
                                "busy",
                                f64::from(busy),
                            );
                            *run = Some((cycle + u64::from(dt), busy));
                        }
                    }
                }
                TraceEvent::MemSample { cycle, dt, read_bytes, write_bytes } => {
                    if mem_run.is_some_and(|end| end < cycle) {
                        let end = mem_run.take().unwrap();
                        counter2(&mut out, mem_pid, tid, end, "bandwidth GB/s", 0.0, 0.0);
                    }
                    let gbps = |bytes: f64| bytes / f64::from(dt.max(1)) * bpc_to_gbps;
                    counter2(
                        &mut out,
                        mem_pid,
                        tid,
                        cycle,
                        "bandwidth GB/s",
                        gbps(read_bytes),
                        gbps(write_bytes),
                    );
                    mem_run = Some(cycle + u64::from(dt));
                }
                TraceEvent::LinkPeak { stage, cycle, src, dst, gbps } => {
                    let names = |i: u16| {
                        endpoint_names.get(usize::from(i)).copied().unwrap_or("?").to_string()
                    };
                    push_event(
                        &mut out,
                        &format!(
                            "\"ph\": \"i\", \"s\": \"p\", \"name\": \"peak {} -> {}\", \
                             \"pid\": {}, \"tid\": {tid}, \"ts\": {cycle}, \
                             \"args\": {{\"gbps\": {}, \"stage\": {stage}}}",
                            json_escape(&names(src)),
                            json_escape(&names(dst)),
                            usize::from(src).min(endpoint_names.len().saturating_sub(1)),
                            json_num(gbps)
                        ),
                    );
                }
                TraceEvent::StageMem { stage, cycle, fill_bytes, spill_bytes } => {
                    push_event(
                        &mut out,
                        &format!(
                            "\"ph\": \"i\", \"s\": \"p\", \"name\": \"stage {stage} stream \
                             volumes\", \"pid\": {mem_pid}, \"tid\": {tid}, \"ts\": {cycle}, \
                             \"args\": {{\"fill_bytes\": {fill_bytes}, \"spill_bytes\": \
                             {spill_bytes}}}"
                        ),
                    );
                }
                TraceEvent::FaultInjected { cycle, kind, endpoint, magnitude } => {
                    push_event(
                        &mut out,
                        &format!(
                            "\"ph\": \"i\", \"s\": \"g\", \"name\": \"fault.injected\", \
                             \"pid\": {}, \"tid\": {tid}, \"ts\": {cycle}, \
                             \"args\": {{\"kind\": {kind}, \"magnitude\": {}}}",
                            usize::from(endpoint).min(endpoint_names.len().saturating_sub(1)),
                            json_num(magnitude)
                        ),
                    );
                }
                TraceEvent::Reschedule { cycle, stages, tiles_lost } => {
                    push_event(
                        &mut out,
                        &format!(
                            "\"ph\": \"i\", \"s\": \"g\", \"name\": \"reschedule\", \
                             \"pid\": {tinst_pid}, \"tid\": {tid}, \"ts\": {cycle}, \
                             \"args\": {{\"stages\": {stages}, \"tiles_lost\": {tiles_lost}}}"
                        ),
                    );
                }
                // One event per quantum would dwarf every other track;
                // programmatic consumers read these from the recorder.
                TraceEvent::DegradedQuantum { .. } => {}
                TraceEvent::ServeRequest { cycle, end_cycle, tenant, query, disposition } => {
                    push_event(
                        &mut out,
                        &format!(
                            "\"ph\": \"X\", \"name\": \"serve.request\", \"pid\": {serve_pid}, \
                             \"tid\": {tid}, \"ts\": {cycle}, \"dur\": {}, \
                             \"args\": {{\"tenant\": {tenant}, \"query\": {query}, \
                             \"disposition\": {disposition}}}",
                            end_cycle.saturating_sub(cycle)
                        ),
                    );
                }
                TraceEvent::BlameSample { cycle, dt, cause, cycles, .. } => {
                    let c = usize::from(cause).min(BlameCause::COUNT - 1);
                    let name = format!("blame {}", BlameCause::ALL[c].name());
                    if blame_run[c].is_some_and(|end| end < cycle) {
                        let end = blame_run[c].take().unwrap();
                        counter(&mut out, tinst_pid, tid, end, &name, "cycles", 0.0);
                    }
                    // Normalize to blamed cycles per simulated cycle so
                    // variable-length quanta plot on a comparable axis.
                    let rate = cycles / f64::from(dt.max(1));
                    counter(&mut out, tinst_pid, tid, cycle, &name, "cycles", rate);
                    blame_run[c] = Some(cycle + u64::from(dt));
                }
            }
        }
        // Close open counter runs so tracks return to zero.
        for (pid, run) in open_run.into_iter().enumerate() {
            if let Some((end, _)) = run {
                counter(&mut out, pid, tid, end, "occupancy", "busy", 0.0);
            }
        }
        if let Some(end) = mem_run {
            counter2(&mut out, mem_pid, tid, end, "bandwidth GB/s", 0.0, 0.0);
        }
        for (c, run) in blame_run.into_iter().enumerate() {
            if let Some(end) = run {
                let name = format!("blame {}", BlameCause::ALL[c].name());
                counter(&mut out, tinst_pid, tid, end, &name, "cycles", 0.0);
            }
        }
    }

    out.push_str("\n],\n\"displayTimeUnit\": \"ms\"\n}\n");
    out
}

fn counter(out: &mut String, pid: usize, tid: usize, ts: u64, name: &str, key: &str, v: f64) {
    let mut body = String::new();
    let _ = write!(
        body,
        "\"ph\": \"C\", \"name\": \"{}\", \"pid\": {pid}, \"tid\": {tid}, \"ts\": {ts}, \
         \"args\": {{\"{}\": {}}}",
        json_escape(name),
        json_escape(key),
        json_num(v)
    );
    push_event(out, &body);
}

fn counter2(out: &mut String, pid: usize, tid: usize, ts: u64, name: &str, read: f64, write: f64) {
    let mut body = String::new();
    let _ = write!(
        body,
        "\"ph\": \"C\", \"name\": \"{}\", \"pid\": {pid}, \"tid\": {tid}, \"ts\": {ts}, \
         \"args\": {{\"read\": {}, \"write\": {}}}",
        json_escape(name),
        json_num(read),
        json_num(write)
    );
    push_event(out, &body);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_chrome_trace_json;

    fn stream() -> TraceStream {
        TraceStream {
            name: "q6".into(),
            events: vec![
                TraceEvent::TinstBegin { stage: 0, cycle: 0, nodes: 3 },
                TraceEvent::StageMem { stage: 0, cycle: 0, fill_bytes: 64, spill_bytes: 0 },
                TraceEvent::TileBusy { tile: 0, cycle: 0, dt: 64, busy: 2 },
                TraceEvent::MemSample { cycle: 0, dt: 64, read_bytes: 512.0, write_bytes: 0.0 },
                TraceEvent::TileBusy { tile: 0, cycle: 64, dt: 64, busy: 2 },
                TraceEvent::TileBusy { tile: 0, cycle: 128, dt: 64, busy: 1 },
                TraceEvent::LinkPeak { stage: 0, cycle: 192, src: 0, dst: 11, gbps: 2.5 },
                TraceEvent::TinstEnd { stage: 0, cycle: 242 },
            ],
        }
    }

    const NAMES: [&str; 12] = [
        "ColSelect",
        "ColFilter",
        "BoolGen",
        "Alu",
        "Joiner",
        "Sorter",
        "Partitioner",
        "Aggregator",
        "Append",
        "Concat",
        "Stitch",
        "Memory",
    ];

    #[test]
    fn export_is_valid_and_merges_counter_runs() {
        let text = chrome_trace_json(&[stream()], &NAMES, 2.52);
        validate_chrome_trace_json(&text).unwrap();
        // The two equal-occupancy quanta merged: busy=2 appears once.
        assert_eq!(text.matches("\"busy\": 2").count(), 1);
        // The run closes back to zero after the busy=1 quantum.
        assert!(text.contains("\"busy\": 0"));
        assert!(text.contains("\"name\": \"tinst 0\""));
        assert!(text.contains("\"dur\": 242"));
        assert!(text.contains("peak ColSelect -> Memory"));
        assert!(text.contains("\"fill_bytes\": 64"));
    }

    #[test]
    fn resilience_events_export_as_instants() {
        let s = TraceStream {
            name: "q1".into(),
            events: vec![
                TraceEvent::FaultInjected { cycle: 0, kind: 0, endpoint: 5, magnitude: 1.0 },
                TraceEvent::Reschedule { cycle: 0, stages: 4, tiles_lost: 1 },
                TraceEvent::DegradedQuantum { stage: 0, cycle: 0, dt: 64 },
            ],
        };
        let text = chrome_trace_json(&[s], &NAMES, 2.52);
        validate_chrome_trace_json(&text).unwrap();
        assert!(text.contains("\"name\": \"fault.injected\""));
        assert!(text.contains("\"tiles_lost\": 1"));
        // DegradedQuantum is deliberately not exported.
        assert!(!text.contains("degraded"));
    }

    #[test]
    fn blame_samples_export_as_counter_tracks() {
        let s = TraceStream {
            name: "q14".into(),
            events: vec![
                TraceEvent::TinstBegin { stage: 0, cycle: 0, nodes: 2 },
                TraceEvent::BlameSample { stage: 0, cycle: 0, dt: 64, cause: 0, cycles: 32.0 },
                TraceEvent::BlameSample { stage: 0, cycle: 64, dt: 64, cause: 2, cycles: 16.0 },
                TraceEvent::TinstEnd { stage: 0, cycle: 128 },
            ],
        };
        let text = chrome_trace_json(&[s], &NAMES, 2.52);
        validate_chrome_trace_json(&text).unwrap();
        assert!(text.contains("\"name\": \"blame input_starvation\""));
        assert!(text.contains("\"name\": \"blame noc_bandwidth\""));
        // Rates normalized by dt, and every open run closes to zero.
        assert!(text.contains("\"cycles\": 0.5"));
        assert!(text.contains("\"cycles\": 0.25"));
        assert_eq!(text.matches("\"cycles\": 0}").count(), 2);
    }

    #[test]
    fn serve_requests_export_as_slices_on_the_serving_process() {
        let s = TraceStream {
            name: "service".into(),
            events: vec![
                TraceEvent::ServeRequest {
                    cycle: 100,
                    end_cycle: 900,
                    tenant: 1,
                    query: 4,
                    disposition: 0,
                },
                TraceEvent::ServeRequest {
                    cycle: 250,
                    end_cycle: 4000,
                    tenant: 0,
                    query: 2,
                    disposition: 3,
                },
            ],
        };
        let text = chrome_trace_json(&[s], &NAMES, 2.52);
        validate_chrome_trace_json(&text).unwrap();
        assert!(text.contains("\"name\": \"Serving\""));
        assert!(text.contains("\"name\": \"serve.request\""));
        assert!(text.contains("\"dur\": 800"));
        assert!(text.contains("\"disposition\": 3"));
    }

    #[test]
    fn export_is_deterministic() {
        let a = chrome_trace_json(&[stream()], &NAMES, 2.52);
        let b = chrome_trace_json(&[stream()], &NAMES, 2.52);
        assert_eq!(a, b);
    }
}
