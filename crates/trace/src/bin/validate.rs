//! `q100-metrics-validate`: schema-check exported artifacts.
//!
//! ```text
//! q100-metrics-validate [--chrome] <file>...
//! ```
//!
//! Validates each file as a `q100-metrics-v1` metrics dump (default) or
//! as a Chrome `trace_event` document (`--chrome`). Exits non-zero on
//! the first invalid file — CI runs this against every generated
//! metrics/trace artifact.

use std::process::ExitCode;

use q100_trace::{validate_chrome_trace_json, validate_metrics_json};

fn main() -> ExitCode {
    let mut chrome = false;
    let mut files = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--chrome" => chrome = true,
            "--metrics" => chrome = false,
            "--help" | "-h" => {
                eprintln!("usage: q100-metrics-validate [--chrome|--metrics] <file>...");
                return ExitCode::SUCCESS;
            }
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        eprintln!("usage: q100-metrics-validate [--chrome|--metrics] <file>...");
        return ExitCode::FAILURE;
    }
    for file in files {
        let text = match std::fs::read_to_string(&file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{file}: cannot read: {e}");
                return ExitCode::FAILURE;
            }
        };
        let result =
            if chrome { validate_chrome_trace_json(&text) } else { validate_metrics_json(&text) };
        match result {
            Ok(()) => println!("{file}: ok"),
            Err(e) => {
                eprintln!("{file}: INVALID: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
