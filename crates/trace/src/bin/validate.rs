//! `q100-metrics-validate`: schema-check exported artifacts.
//!
//! ```text
//! q100-metrics-validate [--chrome|--blame] <file>...
//! ```
//!
//! Validates each file as a `q100-metrics-v1` metrics dump (default),
//! a Chrome `trace_event` document (`--chrome`), or a `q100-blame-v1`
//! bottleneck-attribution report (`--blame`). Exits non-zero on the
//! first invalid file — CI runs this against every generated artifact.

use std::process::ExitCode;

use q100_trace::{validate_blame_json, validate_chrome_trace_json, validate_metrics_json};

#[derive(Clone, Copy)]
enum Schema {
    Metrics,
    Chrome,
    Blame,
}

const USAGE: &str = "usage: q100-metrics-validate [--chrome|--metrics|--blame] <file>...";

fn main() -> ExitCode {
    let mut schema = Schema::Metrics;
    let mut files = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--chrome" => schema = Schema::Chrome,
            "--metrics" => schema = Schema::Metrics,
            "--blame" => schema = Schema::Blame,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    for file in files {
        let text = match std::fs::read_to_string(&file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{file}: cannot read: {e}");
                return ExitCode::FAILURE;
            }
        };
        let result = match schema {
            Schema::Metrics => validate_metrics_json(&text),
            Schema::Chrome => validate_chrome_trace_json(&text),
            Schema::Blame => validate_blame_json(&text),
        };
        match result {
            Ok(()) => println!("{file}: ok"),
            Err(e) => {
                eprintln!("{file}: INVALID: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
