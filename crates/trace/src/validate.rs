//! Schema validators for the export formats.
//!
//! Small structural checks built on the in-crate [`json`](crate::json)
//! parser; CI runs them against every generated artifact (see the
//! `q100-metrics-validate` binary), and the exporter tests use them as
//! self-checks. Covers the metrics dump (`q100-metrics-v1`), Chrome
//! `trace_event` documents, and the bottleneck-attribution report
//! (`q100-blame-v1`).

use crate::analyze::BlameCause;
use crate::json::{parse, Json};

fn num_field(obj: &Json, key: &str, ctx: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("{ctx}: missing numeric field `{key}`"))
}

/// Validates a `q100-metrics-v1` JSON dump.
///
/// # Errors
///
/// Returns a description of the first structural violation: bad JSON, a
/// missing section, non-numeric values, histogram `counts`/`bounds`
/// length mismatches, non-ascending bounds, or a `total` that
/// disagrees with the bucket counts.
pub fn validate_metrics_json(text: &str) -> Result<(), String> {
    let doc = parse(text)?;
    let obj = doc.as_obj().ok_or("top level must be an object")?;
    if doc.get("schema").and_then(Json::as_str) != Some("q100-metrics-v1") {
        return Err("missing or unknown `schema` (want \"q100-metrics-v1\")".into());
    }
    for section in ["counters", "gauges", "histograms"] {
        if obj.get(section).and_then(Json::as_obj).is_none() {
            return Err(format!("missing `{section}` object"));
        }
    }
    for (k, v) in obj["counters"].as_obj().unwrap() {
        let n = v.as_num().ok_or_else(|| format!("counter `{k}` is not a number"))?;
        if n < 0.0 || n.fract() != 0.0 {
            return Err(format!("counter `{k}` is not a non-negative integer"));
        }
    }
    for (k, v) in obj["gauges"].as_obj().unwrap() {
        v.as_num().ok_or_else(|| format!("gauge `{k}` is not a number"))?;
    }
    for (k, h) in obj["histograms"].as_obj().unwrap() {
        let ctx = format!("histogram `{k}`");
        let bounds = h
            .get("bounds")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{ctx}: missing `bounds` array"))?;
        let counts = h
            .get("counts")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{ctx}: missing `counts` array"))?;
        if counts.len() != bounds.len() + 1 {
            return Err(format!(
                "{ctx}: {} counts for {} bounds (want bounds+1)",
                counts.len(),
                bounds.len()
            ));
        }
        let bs: Option<Vec<f64>> = bounds.iter().map(Json::as_num).collect();
        let bs = bs.ok_or_else(|| format!("{ctx}: non-numeric bound"))?;
        if bs.windows(2).any(|w| w[0] >= w[1]) {
            return Err(format!("{ctx}: bounds not strictly ascending"));
        }
        let mut total_counts = 0.0;
        for c in counts {
            let c = c.as_num().ok_or_else(|| format!("{ctx}: non-numeric count"))?;
            if c < 0.0 || c.fract() != 0.0 {
                return Err(format!("{ctx}: counts must be non-negative integers"));
            }
            total_counts += c;
        }
        let total = num_field(h, "total", &ctx)?;
        if (total - total_counts).abs() > 0.5 {
            return Err(format!("{ctx}: total {total} != sum of counts {total_counts}"));
        }
        num_field(h, "sum", &ctx)?;
    }
    Ok(())
}

/// Validates a Chrome `trace_event` JSON document structurally.
///
/// # Errors
///
/// Returns a description of the first violation: bad JSON, a missing
/// `traceEvents` array, an event without `ph`/`pid`, a non-metadata
/// event without a numeric `ts`, or a complete (`X`) event without a
/// `dur`.
pub fn validate_chrome_trace_json(text: &str) -> Result<(), String> {
    let doc = parse(text)?;
    let events =
        doc.get("traceEvents").and_then(Json::as_arr).ok_or("missing `traceEvents` array")?;
    for (i, ev) in events.iter().enumerate() {
        let ctx = format!("traceEvents[{i}]");
        let ph =
            ev.get("ph").and_then(Json::as_str).ok_or_else(|| format!("{ctx}: missing `ph`"))?;
        ev.get("pid").and_then(Json::as_num).ok_or_else(|| format!("{ctx}: missing `pid`"))?;
        if ph != "M" {
            let ts = num_field(ev, "ts", &ctx)?;
            if ts < 0.0 {
                return Err(format!("{ctx}: negative timestamp"));
            }
        }
        if ph == "X" {
            num_field(ev, "dur", &ctx)?;
        }
        if ph == "i" && ev.get("s").and_then(Json::as_str).is_none() {
            return Err(format!("{ctx}: instant event without scope `s`"));
        }
    }
    Ok(())
}

/// Validates a `q100-blame-v1` bottleneck-attribution report.
///
/// # Errors
///
/// Returns a description of the first structural violation: bad JSON,
/// a missing/unknown `schema`, a design without a name or `queries`
/// array, a query entry missing its name, a non-integer `cycles`, a
/// `causes` object that does not carry every [`BlameCause`] as a
/// non-negative number, a `critical_path.fraction` outside `[0, 1]`,
/// or a `what_if` entry without `label`/`est_cycles`/`delta_pct`.
pub fn validate_blame_json(text: &str) -> Result<(), String> {
    let doc = parse(text)?;
    if doc.as_obj().is_none() {
        return Err("top level must be an object".into());
    }
    if doc.get("schema").and_then(Json::as_str) != Some("q100-blame-v1") {
        return Err("missing or unknown `schema` (want \"q100-blame-v1\")".into());
    }
    let designs = doc.get("designs").and_then(Json::as_arr).ok_or("missing `designs` array")?;
    for (d, design) in designs.iter().enumerate() {
        let name = design
            .get("design")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("designs[{d}]: missing `design` name"))?;
        let queries = design
            .get("queries")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("design `{name}`: missing `queries` array"))?;
        for (q, query) in queries.iter().enumerate() {
            let qn = query
                .get("query")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("design `{name}` queries[{q}]: missing `query` name"))?;
            let ctx = format!("design `{name}` query `{qn}`");
            let cycles = num_field(query, "cycles", &ctx)?;
            if cycles < 0.0 || cycles.fract() != 0.0 {
                return Err(format!("{ctx}: `cycles` is not a non-negative integer"));
            }
            let causes = query
                .get("causes")
                .and_then(Json::as_obj)
                .ok_or_else(|| format!("{ctx}: missing `causes` object"))?;
            for cause in BlameCause::ALL {
                let v = causes
                    .iter()
                    .find(|(k, _)| k.as_str() == cause.name())
                    .and_then(|(_, v)| v.as_num())
                    .ok_or_else(|| format!("{ctx}: `causes` missing numeric `{}`", cause.name()))?;
                if v < 0.0 {
                    return Err(format!("{ctx}: cause `{}` is negative", cause.name()));
                }
            }
            let cp = query
                .get("critical_path")
                .ok_or_else(|| format!("{ctx}: missing `critical_path`"))?;
            let fraction = num_field(cp, "fraction", &ctx)?;
            if !(0.0..=1.0).contains(&fraction) {
                return Err(format!("{ctx}: `critical_path.fraction` outside [0, 1]"));
            }
            let what_if = query
                .get("what_if")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("{ctx}: missing `what_if` array"))?;
            for (w, entry) in what_if.iter().enumerate() {
                let wctx = format!("{ctx} what_if[{w}]");
                if entry.get("label").and_then(Json::as_str).is_none() {
                    return Err(format!("{wctx}: missing `label`"));
                }
                num_field(entry, "est_cycles", &wctx)?;
                num_field(entry, "delta_pct", &wctx)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn accepts_registry_dump() {
        let r = Registry::new();
        r.inc("a", 1);
        r.set_gauge("g", 0.5);
        r.observe("h", 3.0);
        let empty = Registry::new();
        validate_metrics_json(&r.snapshot().to_json()).unwrap();
        validate_metrics_json(&r.snapshot().to_json_all()).unwrap();
        validate_metrics_json(&empty.snapshot().to_json()).unwrap();
    }

    #[test]
    fn rejects_structural_violations() {
        let cases = [
            ("{}", "schema"),
            (r#"{"schema": "q100-metrics-v1"}"#, "counters"),
            (
                r#"{"schema": "q100-metrics-v1", "counters": {"a": -1}, "gauges": {}, "histograms": {}}"#,
                "non-negative",
            ),
            (
                r#"{"schema": "q100-metrics-v1", "counters": {}, "gauges": {}, "histograms": {"h": {"bounds": [1, 2], "counts": [0, 0], "total": 0, "sum": 0}}}"#,
                "bounds+1",
            ),
            (
                r#"{"schema": "q100-metrics-v1", "counters": {}, "gauges": {}, "histograms": {"h": {"bounds": [2, 1], "counts": [0, 0, 0], "total": 0, "sum": 0}}}"#,
                "ascending",
            ),
            (
                r#"{"schema": "q100-metrics-v1", "counters": {}, "gauges": {}, "histograms": {"h": {"bounds": [1], "counts": [1, 0], "total": 5, "sum": 0}}}"#,
                "sum of counts",
            ),
        ];
        for (doc, want) in cases {
            let err = validate_metrics_json(doc).unwrap_err();
            assert!(err.contains(want), "`{doc}` -> `{err}` (wanted `{want}`)");
        }
    }

    #[test]
    fn blame_validator_checks_structure() {
        let causes: Vec<String> =
            BlameCause::ALL.iter().map(|c| format!("\"{}\": 1.5", c.name())).collect();
        let good = format!(
            concat!(
                "{{\"schema\": \"q100-blame-v1\", \"designs\": [{{\"design\": \"Pareto\", ",
                "\"queries\": [{{\"query\": \"q1\", \"cycles\": 100, \"causes\": {{{}}}, ",
                "\"critical_path\": {{\"fraction\": 0.5}}, ",
                "\"what_if\": [{{\"label\": \"+1 Joiner\", \"est_cycles\": 90, ",
                "\"delta_pct\": -10.0}}]}}]}}]}}"
            ),
            causes.join(", ")
        );
        validate_blame_json(&good).unwrap();
        let cases = [
            (good.replace("q100-blame-v1", "nope"), "schema"),
            (good.replace("\"cycles\": 100", "\"cycles\": 1.5"), "integer"),
            (good.replace("\"input_starvation\": 1.5", "\"input_starvation\": -1"), "negative"),
            (good.replace("\"fraction\": 0.5", "\"fraction\": 1.5"), "[0, 1]"),
            (good.replace("\"label\": \"+1 Joiner\", ", ""), "label"),
        ];
        for (doc, want) in cases {
            let err = validate_blame_json(&doc).unwrap_err();
            assert!(err.contains(want), "-> `{err}` (wanted `{want}`)");
        }
        let missing_cause = good.replace("\"tile_wait\": 1.5", "\"tile_wait_typo\": 1.5");
        assert!(validate_blame_json(&missing_cause).unwrap_err().contains("tile_wait"));
    }

    #[test]
    fn chrome_validator_rejects_bad_events() {
        validate_chrome_trace_json(r#"{"traceEvents": []}"#).unwrap();
        assert!(validate_chrome_trace_json("{}").is_err());
        let no_ts = r#"{"traceEvents": [{"ph": "C", "pid": 0}]}"#;
        assert!(validate_chrome_trace_json(no_ts).unwrap_err().contains("ts"));
        let no_dur = r#"{"traceEvents": [{"ph": "X", "pid": 0, "ts": 1}]}"#;
        assert!(validate_chrome_trace_json(no_dur).unwrap_err().contains("dur"));
    }
}
