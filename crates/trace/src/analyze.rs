//! Bottleneck attribution: the blame data model and its analyses.
//!
//! The timing simulator (in `q100-core`) can classify, per plan node
//! and per quantum, every cycle of a query's runtime into either
//! *active* streaming or one of the exhaustive [`BlameCause`]s, and
//! accumulate the ledger into a [`BlameReport`]. This module owns the
//! report type (kept core-independent: tile kinds are endpoint indices,
//! dependencies are graph node ids) and the derived analyses:
//!
//! * [`critical_path`] — the heaviest chain through the compiled-plan
//!   DAG, weighted by per-node active cycles;
//! * [`kind_utilization`] / [`link_utilization`] /
//!   [`utilization_histogram`] — how busy each tile class, each
//!   same-stage producer→consumer link class, and the node population
//!   are over the whole runtime;
//! * [`what_ifs`] — analytical estimates of relaxing one resource
//!   (double a bandwidth cap, add one tile instance) computed directly
//!   from the blame ledger, with no re-simulation.
//!
//! The accounting invariant every report must satisfy (enforced by
//! [`BlameReport::check_invariant`] and a property test in core): for
//! every node, `active_cycles + Σ blamed == total query cycles`. Every
//! cycle of the run is attributed, for every node, exactly once.

use crate::metrics::Histogram;

/// Why a node failed to make ideal progress during some cycles.
///
/// The taxonomy is exhaustive: every non-active cycle of every node
/// lands in exactly one bucket (see DESIGN.md §11 for the attribution
/// rules).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum BlameCause {
    /// An in-stage producer had not yet made the records available.
    InputStarvation = 0,
    /// Downstream could not accept output: consumer queue full, or the
    /// port's own availability/streaming window was the binding clamp.
    OutputBackpressure = 1,
    /// A per-link NoC bandwidth cap was the binding clamp.
    NocBandwidth = 2,
    /// The shared memory *read* endpoint budget scaled the advance down.
    MemReadBandwidth = 3,
    /// The shared memory *write* endpoint budget throttled an output
    /// port that spills to memory.
    MemWriteBandwidth = 4,
    /// The fixed per-temporal-instruction memory startup latency.
    MemStartup = 5,
    /// Tile-mix serialization: the node's stage had not started yet
    /// because earlier temporal instructions still held the tiles.
    TileWait = 6,
    /// Fault-injection derating: frequency-derated tiles and transient
    /// per-stage stall cycles (resilience layer).
    FaultDerate = 7,
    /// The node had finished its own work (or was consuming the tail of
    /// a finishing stream) while the rest of the query kept running.
    Drained = 8,
}

impl BlameCause {
    /// Number of causes in the taxonomy.
    pub const COUNT: usize = 9;

    /// Every cause, in index order.
    pub const ALL: [BlameCause; BlameCause::COUNT] = [
        BlameCause::InputStarvation,
        BlameCause::OutputBackpressure,
        BlameCause::NocBandwidth,
        BlameCause::MemReadBandwidth,
        BlameCause::MemWriteBandwidth,
        BlameCause::MemStartup,
        BlameCause::TileWait,
        BlameCause::FaultDerate,
        BlameCause::Drained,
    ];

    /// Stable machine-readable name (used in `q100-blame-v1` JSON).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BlameCause::InputStarvation => "input_starvation",
            BlameCause::OutputBackpressure => "output_backpressure",
            BlameCause::NocBandwidth => "noc_bandwidth",
            BlameCause::MemReadBandwidth => "mem_read_bandwidth",
            BlameCause::MemWriteBandwidth => "mem_write_bandwidth",
            BlameCause::MemStartup => "mem_startup",
            BlameCause::TileWait => "tile_wait",
            BlameCause::FaultDerate => "fault_derate",
            BlameCause::Drained => "drained",
        }
    }

    /// Index into per-cause arrays (the discriminant).
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// The full cycle ledger of one plan node over one simulated query.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeBlame {
    /// Graph node id.
    pub node: u32,
    /// Tile kind as an endpoint index (resolved to a name by the
    /// caller's endpoint table, as everywhere in this crate).
    pub kind: u16,
    /// Temporal instruction (stage) the node executed in.
    pub stage: u32,
    /// Cycles the node spent actively streaming records.
    pub active_cycles: f64,
    /// Cycles blamed on each [`BlameCause`], indexed by
    /// [`BlameCause::index`].
    pub blamed: [f64; BlameCause::COUNT],
    /// Graph node ids of this node's producers (the compiled-plan DAG
    /// edges; producers outside the plan, e.g. base tables, are
    /// omitted).
    pub deps: Vec<u32>,
}

impl NodeBlame {
    /// Total blamed (non-active) cycles.
    #[must_use]
    pub fn blamed_total(&self) -> f64 {
        self.blamed.iter().sum()
    }

    /// Active plus blamed cycles — must equal the query's total cycles.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.active_cycles + self.blamed_total()
    }
}

/// Per-query blame accounting: one ledger per plan node, plus the
/// run-level context the analyses need.
#[derive(Debug, Clone, PartialEq)]
pub struct BlameReport {
    /// End-to-end simulated cycles of the query.
    pub cycles: u64,
    /// Cycles of each temporal instruction (including memory startup
    /// latency and fault stalls), summing to `cycles`.
    pub per_stage_cycles: Vec<u64>,
    /// Tile instances per kind in the simulated design (indexed by
    /// endpoint index; memory has no entry).
    pub tile_counts: Vec<u32>,
    /// One ledger per plan node, in stage-major plan order.
    pub nodes: Vec<NodeBlame>,
}

impl BlameReport {
    /// Sum of blamed cycles per cause over all nodes.
    #[must_use]
    pub fn cause_totals(&self) -> [f64; BlameCause::COUNT] {
        let mut totals = [0.0; BlameCause::COUNT];
        for node in &self.nodes {
            for (t, b) in totals.iter_mut().zip(&node.blamed) {
                *t += b;
            }
        }
        totals
    }

    /// Sum of active cycles over all nodes.
    #[must_use]
    pub fn active_total(&self) -> f64 {
        self.nodes.iter().map(|n| n.active_cycles).sum()
    }

    /// Causes sorted by total blamed cycles, descending (ties broken by
    /// cause index — deterministic).
    #[must_use]
    pub fn top_causes(&self) -> Vec<(BlameCause, f64)> {
        let totals = self.cause_totals();
        let mut out: Vec<(BlameCause, f64)> =
            BlameCause::ALL.iter().map(|&c| (c, totals[c.index()])).collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        out
    }

    /// Verifies the accounting invariant: for every node,
    /// `active + Σ blamed == cycles` (within floating-point accumulation
    /// tolerance) and no bucket is negative.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated node.
    pub fn check_invariant(&self) -> Result<(), String> {
        let total = self.cycles as f64;
        let tol = total.max(1.0) * 1e-6;
        for node in &self.nodes {
            if node.active_cycles < -1e-9 {
                return Err(format!("node {}: negative active cycles", node.node));
            }
            for (&b, cause) in node.blamed.iter().zip(BlameCause::ALL) {
                if b < -1e-9 {
                    return Err(format!("node {}: negative {} blame", node.node, cause.name()));
                }
            }
            let sum = node.total();
            if (sum - total).abs() > tol {
                return Err(format!(
                    "node {} (stage {}): active+blamed = {sum} != total cycles {total}",
                    node.node, node.stage
                ));
            }
        }
        let stage_sum: u64 = self.per_stage_cycles.iter().sum();
        if stage_sum != self.cycles {
            return Err(format!("stage cycles sum {stage_sum} != total {}", self.cycles));
        }
        Ok(())
    }
}

/// The heaviest dependency chain through the plan DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Graph node ids along the path, source first.
    pub nodes: Vec<u32>,
    /// Sum of active cycles along the path.
    pub cycles: f64,
    /// `cycles` as a fraction of the query's total cycles.
    pub fraction: f64,
}

/// Extracts the critical path: the longest path through the plan's
/// dependency DAG, weighted by each node's active cycles. Deterministic
/// — ties prefer the lowest graph node id.
#[must_use]
pub fn critical_path(report: &BlameReport) -> CriticalPath {
    let n = report.nodes.len();
    if n == 0 {
        return CriticalPath { nodes: Vec::new(), cycles: 0.0, fraction: 0.0 };
    }
    // Dense index over the (sparse) graph node ids present in the plan.
    let index_of = |id: u32| report.nodes.iter().position(|nb| nb.node == id);
    let mut dist = vec![0.0_f64; n];
    let mut pred: Vec<Option<usize>> = vec![None; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    // Kahn-style topological order, lowest node id first among the
    // ready set (O(n^2) — plans are tens of nodes).
    while order.len() < n {
        let mut next: Option<usize> = None;
        for (i, nb) in report.nodes.iter().enumerate() {
            if placed[i] {
                continue;
            }
            let ready = nb.deps.iter().all(|&d| index_of(d).is_none_or(|j| placed[j]));
            if ready && next.is_none_or(|b| nb.node < report.nodes[b].node) {
                next = Some(i);
            }
        }
        let Some(i) = next else {
            // A dependency cycle would be a compiler bug; bail with
            // whatever prefix we ordered rather than looping forever.
            break;
        };
        placed[i] = true;
        order.push(i);
    }
    for &i in &order {
        let nb = &report.nodes[i];
        let mut best: Option<usize> = None;
        for &d in &nb.deps {
            let Some(j) = index_of(d) else { continue };
            let better = match best {
                None => dist[j] > 0.0 || report.nodes[j].active_cycles >= 0.0,
                Some(b) => {
                    dist[j] > dist[b]
                        || (dist[j] == dist[b] && report.nodes[j].node < report.nodes[b].node)
                }
            };
            if better {
                best = Some(j);
            }
        }
        dist[i] = nb.active_cycles + best.map_or(0.0, |j| dist[j]);
        pred[i] = best;
    }
    let mut end = 0usize;
    for i in 1..n {
        if dist[i] > dist[end]
            || (dist[i] == dist[end] && report.nodes[i].node < report.nodes[end].node)
        {
            end = i;
        }
    }
    let mut chain = Vec::new();
    let mut cur = Some(end);
    while let Some(i) = cur {
        chain.push(report.nodes[i].node);
        cur = pred[i];
    }
    chain.reverse();
    let cycles = dist[end];
    let total = report.cycles as f64;
    CriticalPath {
        nodes: chain,
        cycles,
        fraction: if total > 0.0 { (cycles / total).min(1.0) } else { 0.0 },
    }
}

/// Aggregate utilization of one tile class over the whole runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct KindUtilization {
    /// Tile kind (endpoint index).
    pub kind: u16,
    /// Plan nodes of this kind.
    pub nodes: u32,
    /// Provisioned instances in the design.
    pub count: u32,
    /// Sum of active cycles over the class's nodes.
    pub busy_cycles: f64,
    /// Time-averaged busy fraction per provisioned instance:
    /// `busy / (cycles × count)`.
    pub utilization: f64,
}

/// Per-tile-class utilization, ascending by kind; classes with no plan
/// nodes are omitted.
#[must_use]
pub fn kind_utilization(report: &BlameReport) -> Vec<KindUtilization> {
    let total = report.cycles as f64;
    let kinds = report.tile_counts.len();
    let mut busy = vec![0.0_f64; kinds];
    let mut nodes = vec![0u32; kinds];
    for nb in &report.nodes {
        let k = nb.kind as usize;
        if k < kinds {
            busy[k] += nb.active_cycles;
            nodes[k] += 1;
        }
    }
    (0..kinds)
        .filter(|&k| nodes[k] > 0)
        .map(|k| {
            let count = report.tile_counts[k].max(1);
            KindUtilization {
                kind: k as u16,
                nodes: nodes[k],
                count: report.tile_counts[k],
                busy_cycles: busy[k],
                utilization: if total > 0.0 { busy[k] / (total * count as f64) } else { 0.0 },
            }
        })
        .collect()
}

/// Aggregate utilization of one same-stage producer→consumer link
/// class.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkUtilization {
    /// Producer tile kind (endpoint index).
    pub src: u16,
    /// Consumer tile kind (endpoint index).
    pub dst: u16,
    /// Number of same-stage edges of this class.
    pub edges: u32,
    /// Consumer active cycles summed over those edges (the cycles the
    /// link was actually streaming).
    pub busy_cycles: f64,
    /// `busy / (cycles × edges)`.
    pub utilization: f64,
}

/// Per-NoC-link-class utilization derived from consumer activity,
/// ascending by (src, dst). Cross-stage edges round-trip through memory
/// and are not NoC links, so they are excluded.
#[must_use]
pub fn link_utilization(report: &BlameReport) -> Vec<LinkUtilization> {
    use std::collections::BTreeMap;
    let total = report.cycles as f64;
    let mut links: BTreeMap<(u16, u16), (u32, f64)> = BTreeMap::new();
    for nb in &report.nodes {
        for &d in &nb.deps {
            let Some(p) = report.nodes.iter().find(|x| x.node == d) else { continue };
            if p.stage != nb.stage {
                continue;
            }
            let e = links.entry((p.kind, nb.kind)).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += nb.active_cycles;
        }
    }
    links
        .into_iter()
        .map(|((src, dst), (edges, busy))| LinkUtilization {
            src,
            dst,
            edges,
            busy_cycles: busy,
            utilization: if total > 0.0 && edges > 0 { busy / (total * edges as f64) } else { 0.0 },
        })
        .collect()
}

/// Bucket bounds for [`utilization_histogram`]: busy fractions.
pub const UTILIZATION_BOUNDS: [f64; 5] = [0.1, 0.25, 0.5, 0.75, 0.9];

/// Histogram of per-node busy fractions (`active / cycles`) — a quick
/// view of how much of the plan idles.
#[must_use]
pub fn utilization_histogram(report: &BlameReport) -> Histogram {
    let mut h = Histogram::new(&UTILIZATION_BOUNDS);
    let total = report.cycles as f64;
    for nb in &report.nodes {
        h.observe(if total > 0.0 { nb.active_cycles / total } else { 0.0 });
    }
    h
}

/// One analytical resource-relaxation estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIf {
    /// Human-readable resource change, e.g. `+1 Joiner` or `2x NoC
    /// bandwidth`.
    pub label: String,
    /// Estimated cycles saved by the change.
    pub saved_cycles: f64,
    /// Estimated new total cycles.
    pub est_cycles: u64,
    /// Estimated runtime change in percent (negative = faster).
    pub delta_pct: f64,
}

/// Index of the per-stage critical node: the in-stage node with the
/// most non-idle cycles (total minus `TileWait` and `Drained`), ties to
/// the lowest graph node id. `None` for an empty stage.
fn stage_critical_node(report: &BlameReport, stage: u32) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, nb) in report.nodes.iter().enumerate() {
        if nb.stage != stage {
            continue;
        }
        let non_idle = nb.total()
            - nb.blamed[BlameCause::TileWait.index()]
            - nb.blamed[BlameCause::Drained.index()];
        let better = match best {
            None => true,
            Some((b, v)) => non_idle > v || (non_idle == v && nb.node < report.nodes[b].node),
        };
        if better {
            best = Some((i, non_idle));
        }
    }
    best.map(|(i, _)| i)
}

/// Analytical what-if estimates from the blame ledger — no
/// re-simulation. Two families of relaxations (see DESIGN.md §11 for
/// the model and its assumptions):
///
/// * **2× a bandwidth resource** (NoC link, memory read, memory write):
///   halves the cycles the *per-stage critical node* blames on that
///   resource. Only the critical node's stalls extend the stage, and
///   doubling a cap at most halves the time lost to it.
/// * **+1 tile of kind K** (count n → n+1): shrinks the span of
///   K-saturated stages (stages using every provisioned instance of K)
///   by `1/(n+1)`, the work-conserving redistribution bound.
///
/// `kind_names` resolves endpoint indices for the labels. Results are
/// sorted by estimated savings, descending; zero-savings entries are
/// dropped.
#[must_use]
pub fn what_ifs(report: &BlameReport, kind_names: &[&str]) -> Vec<WhatIf> {
    let total = report.cycles as f64;
    if total <= 0.0 {
        return Vec::new();
    }
    let mut out: Vec<WhatIf> = Vec::new();
    let stages = report.per_stage_cycles.len();

    // Bandwidth relaxations.
    for (cause, label) in [
        (BlameCause::NocBandwidth, "2x NoC bandwidth"),
        (BlameCause::MemReadBandwidth, "2x memory read bandwidth"),
        (BlameCause::MemWriteBandwidth, "2x memory write bandwidth"),
    ] {
        let mut saved = 0.0;
        for s in 0..stages {
            if let Some(i) = stage_critical_node(report, s as u32) {
                saved += 0.5 * report.nodes[i].blamed[cause.index()];
            }
        }
        if saved > 0.0 {
            out.push(make_what_if(label.to_string(), saved, total));
        }
    }

    // Tile-mix relaxations: +1 instance of each saturated kind.
    let kinds = report.tile_counts.len();
    for k in 0..kinds {
        let n = report.tile_counts[k];
        if n == 0 {
            continue;
        }
        let mut saturated_span = 0.0_f64;
        for s in 0..stages {
            let used = report
                .nodes
                .iter()
                .filter(|nb| nb.stage == s as u32 && nb.kind == k as u16)
                .count();
            if used >= n as usize {
                saturated_span += report.per_stage_cycles[s] as f64;
            }
        }
        let saved = saturated_span / (n + 1) as f64;
        if saved > 0.0 {
            let name = kind_names.get(k).copied().unwrap_or("?");
            out.push(make_what_if(format!("+1 {name}"), saved, total));
        }
    }

    out.sort_by(|a, b| {
        b.saved_cycles
            .partial_cmp(&a.saved_cycles)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.label.cmp(&b.label))
    });
    out
}

fn make_what_if(label: String, saved: f64, total: f64) -> WhatIf {
    WhatIf {
        label,
        saved_cycles: saved,
        est_cycles: (total - saved).max(0.0).round() as u64,
        delta_pct: -100.0 * saved / total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: u32, kind: u16, stage: u32, active: f64, deps: &[u32], total: f64) -> NodeBlame {
        let mut blamed = [0.0; BlameCause::COUNT];
        blamed[BlameCause::Drained.index()] = total - active;
        NodeBlame { node: id, kind, stage, active_cycles: active, blamed, deps: deps.to_vec() }
    }

    fn chain_report() -> BlameReport {
        // 0 -> 1 -> 3, 2 -> 3; node 1 is the heavy hop.
        BlameReport {
            cycles: 1000,
            per_stage_cycles: vec![1000],
            tile_counts: vec![1, 2],
            nodes: vec![
                node(0, 0, 0, 100.0, &[], 1000.0),
                node(1, 1, 0, 700.0, &[0], 1000.0),
                node(2, 0, 0, 50.0, &[], 1000.0),
                node(3, 1, 0, 150.0, &[1, 2], 1000.0),
            ],
        }
    }

    #[test]
    fn invariant_accepts_exact_ledgers_and_rejects_gaps() {
        let mut r = chain_report();
        assert!(r.check_invariant().is_ok());
        r.nodes[1].active_cycles += 5.0;
        assert!(r.check_invariant().is_err());
    }

    #[test]
    fn critical_path_follows_heaviest_chain() {
        let cp = critical_path(&chain_report());
        assert_eq!(cp.nodes, vec![0, 1, 3]);
        assert!((cp.cycles - 950.0).abs() < 1e-9);
        assert!((cp.fraction - 0.95).abs() < 1e-9);
    }

    #[test]
    fn critical_path_is_empty_on_empty_report() {
        let r =
            BlameReport { cycles: 0, per_stage_cycles: vec![], tile_counts: vec![], nodes: vec![] };
        let cp = critical_path(&r);
        assert!(cp.nodes.is_empty());
        assert_eq!(cp.fraction, 0.0);
    }

    #[test]
    fn kind_utilization_averages_over_instances() {
        let u = kind_utilization(&chain_report());
        assert_eq!(u.len(), 2);
        // Kind 0: (100+50)/1000 over 1 instance.
        assert!((u[0].utilization - 0.15).abs() < 1e-9);
        // Kind 1: (700+150)/1000 over 2 instances.
        assert!((u[1].utilization - 0.425).abs() < 1e-9);
    }

    #[test]
    fn link_utilization_covers_same_stage_edges() {
        let links = link_utilization(&chain_report());
        // (0->1), (1->3) and (0->3 via node 2's kind 0): classes
        // (0,1) x2 edges [0->1, 2->3], (1,1) x1 edge [1->3].
        assert_eq!(links.len(), 2);
        assert_eq!(links[0].src, 0);
        assert_eq!(links[0].edges, 2);
        assert_eq!(
            links[1],
            LinkUtilization { src: 1, dst: 1, edges: 1, busy_cycles: 150.0, utilization: 0.15 }
        );
    }

    #[test]
    fn what_ifs_rank_by_savings_and_skip_zero() {
        let mut r = chain_report();
        // Blame the heavy node's stalls on the NoC.
        r.nodes[1].blamed[BlameCause::Drained.index()] = 0.0;
        r.nodes[1].blamed[BlameCause::NocBandwidth.index()] = 300.0;
        let w = what_ifs(&r, &["ColSelect", "Joiner"]);
        assert!(!w.is_empty());
        // Kind 0 has 1 instance saturated for the whole stage: saves
        // 1000/2 = 500, the top entry.
        assert_eq!(w[0].label, "+1 ColSelect");
        assert!((w[0].saved_cycles - 500.0).abs() < 1e-9);
        assert!(w[0].delta_pct < -49.0);
        // NoC doubling halves the critical node's 300 blamed cycles.
        assert!(w
            .iter()
            .any(|x| x.label == "2x NoC bandwidth" && (x.saved_cycles - 150.0).abs() < 1e-9));
        assert!(w.iter().all(|x| x.saved_cycles > 0.0));
    }

    #[test]
    fn top_causes_sort_descending() {
        let r = chain_report();
        let top = r.top_causes();
        assert_eq!(top[0].0, BlameCause::Drained);
        assert!(top[0].1 > top[1].1);
    }

    #[test]
    fn utilization_histogram_buckets_nodes() {
        let h = utilization_histogram(&chain_report());
        assert_eq!(h.total, 4);
        // 0.10, 0.70, 0.05, 0.15 -> buckets <=0.1: 2, <=0.25: 1, <=0.75: 1.
        assert_eq!(h.counts, vec![2, 1, 0, 1, 0, 0]);
    }
}
