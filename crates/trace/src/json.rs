//! A minimal JSON parser.
//!
//! The workspace is dependency-free by policy, so the schema validators
//! (and the exporter tests) parse JSON with this small recursive-descent
//! implementation instead of `serde`. It accepts strict JSON (RFC 8259)
//! minus one liberty: `\u` escapes are decoded only for the BMP (no
//! surrogate-pair recombination), which none of our exporters emit.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (ordered by key).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The object map, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up `key` in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(bytes, pos),
        _ => Err(format!("unexpected input at byte {}", *pos)),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|e| e.to_string());
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0c),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        let c = char::from_u32(code)
                            .ok_or_else(|| "surrogate \\u escape unsupported".to_string())?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) => {
                out.push(c);
                *pos += 1;
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true, "e": null}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_num(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "tru", "\"unterminated", "{} extra", "[1 2]"] {
            assert!(parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse(r#""éA""#).unwrap();
        assert_eq!(v.as_str(), Some("éA"));
        // Raw UTF-8 passes through untouched.
        assert_eq!(parse(r#""héllo""#).unwrap().as_str(), Some("héllo"));
    }
}
