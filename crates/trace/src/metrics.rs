//! A deterministic, thread-safe metrics registry.
//!
//! Counters, gauges, and fixed-bucket histograms keyed by string. All
//! hot-path mutation is commutative — counter adds and histogram
//! observations — so the final values do not depend on the interleaving
//! of sweep workers, and the backing maps are ordered (`BTreeMap`), so
//! every dump is byte-stable. Nothing here reads a clock: durations are
//! recorded in *simulated* units (cycles, records, bytes) by callers.
//!
//! # Volatile keys
//!
//! Keys starting with `~` mark metrics that legitimately vary between
//! runs (per-worker task counts, configured worker counts). They are
//! kept out of [`MetricsSnapshot::to_json`] so the deterministic dump
//! stays byte-identical across `--jobs` settings; [`MetricsSnapshot::to_json_all`]
//! includes them.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Default histogram bucket upper bounds: powers of four from 1 to
/// 4^12 ≈ 16.8M, a decade-spanning grid that suits cycle counts,
/// byte volumes, and record counts alike. Observations above the last
/// bound land in the implicit overflow bucket.
pub const DEFAULT_BOUNDS: [f64; 13] = [
    1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0, 4194304.0,
    16777216.0,
];

/// A fixed-bucket histogram: `counts[i]` tallies observations `v <=
/// bounds[i]` (first matching bucket); `counts[bounds.len()]` is the
/// overflow bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Ascending bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts; one longer than `bounds`.
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub total: u64,
    /// Sum of all observed values.
    pub sum: f64,
}

impl Histogram {
    /// An empty histogram over the given ascending bounds.
    #[must_use]
    pub fn new(bounds: &[f64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Histogram { bounds: bounds.to_vec(), counts: vec![0; bounds.len() + 1], total: 0, sum: 0.0 }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        let idx = self.bounds.iter().position(|&b| v <= b).unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += v;
    }

    /// Merges another histogram with identical bounds into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "cannot merge histograms with different bounds");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
    }
}

#[derive(Debug, Default, Clone)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// The thread-safe registry. Cheap to share by reference across sweep
/// workers; see the module docs for the determinism contract.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to counter `key` (created at zero on first use).
    pub fn inc(&self, key: &str, by: u64) {
        let mut inner = self.lock();
        *inner.counters.entry(key.to_string()).or_insert(0) += by;
    }

    /// Sets gauge `key` to `v`. Last write wins, so gauges should only
    /// be set from serial contexts (or marked volatile with a `~`
    /// prefix) to preserve determinism.
    pub fn set_gauge(&self, key: &str, v: f64) {
        self.lock().gauges.insert(key.to_string(), v);
    }

    /// Records `v` into histogram `key`, creating it over
    /// [`DEFAULT_BOUNDS`] on first use.
    pub fn observe(&self, key: &str, v: f64) {
        let mut inner = self.lock();
        inner
            .histograms
            .entry(key.to_string())
            .or_insert_with(|| Histogram::new(&DEFAULT_BOUNDS))
            .observe(v);
    }

    /// Merges a locally accumulated histogram into histogram `key`
    /// (created over `local`'s bounds on first use). Hot loops batch
    /// observations into their own [`Histogram`] and merge once, paying
    /// one registry lock instead of one per observation; counts and the
    /// (integer-valued) sums land identical to per-value [`Registry::observe`]
    /// calls.
    ///
    /// # Panics
    ///
    /// Panics if the key already exists with different bucket bounds.
    pub fn merge_histogram(&self, key: &str, local: &Histogram) {
        let mut inner = self.lock();
        inner
            .histograms
            .entry(key.to_string())
            .or_insert_with(|| Histogram::new(&local.bounds))
            .merge(local);
    }

    /// Records `v` into histogram `key`, creating it over `bounds` on
    /// first use (existing bounds are kept).
    pub fn observe_with_bounds(&self, key: &str, v: f64, bounds: &[f64]) {
        let mut inner = self.lock();
        inner
            .histograms
            .entry(key.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(v);
    }

    /// Current value of counter `key` (zero when absent).
    #[must_use]
    pub fn counter(&self, key: &str) -> u64 {
        self.lock().counters.get(key).copied().unwrap_or(0)
    }

    /// Current value of gauge `key`.
    #[must_use]
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.lock().gauges.get(key).copied()
    }

    /// A point-in-time copy of every metric.
    ///
    /// # Panics
    ///
    /// Panics if the registry mutex was poisoned by a panicking thread.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner.histograms.clone(),
        }
    }

    /// Merges a snapshot into this registry: counters add, gauges
    /// overwrite, histograms merge (bounds must match).
    pub fn absorb(&self, snap: &MetricsSnapshot) {
        let mut inner = self.lock();
        for (k, v) in &snap.counters {
            *inner.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &snap.gauges {
            inner.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &snap.histograms {
            match inner.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    inner.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// Drops every metric.
    pub fn clear(&self) {
        let mut inner = self.lock();
        *inner = Inner::default();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap()
    }
}

/// An immutable copy of a registry's contents, ready to export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Fixed-bucket histograms.
    pub histograms: BTreeMap<String, Histogram>,
}

/// Formats an `f64` as a JSON number (non-finite values, which no
/// deterministic simulated metric should produce, degrade to 0).
pub(crate) fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        debug_assert!(false, "non-finite metric value {v}");
        "0".to_string()
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl MetricsSnapshot {
    fn is_volatile(key: &str) -> bool {
        key.starts_with('~')
    }

    /// The deterministic JSON dump: volatile (`~`-prefixed) metrics are
    /// excluded, so the output is byte-identical across worker counts.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.render_json(false)
    }

    /// The full JSON dump including volatile metrics.
    #[must_use]
    pub fn to_json_all(&self) -> String {
        self.render_json(true)
    }

    fn render_json(&self, include_volatile: bool) -> String {
        use std::fmt::Write as _;
        let keep = |k: &str| include_volatile || !Self::is_volatile(k);
        let mut out = String::from("{\n  \"schema\": \"q100-metrics-v1\",\n  \"counters\": {");
        let mut first = true;
        for (k, v) in self.counters.iter().filter(|(k, _)| keep(k)) {
            let _ =
                write!(out, "{}\n    \"{}\": {v}", if first { "" } else { "," }, json_escape(k));
            first = false;
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"gauges\": {");
        first = true;
        for (k, v) in self.gauges.iter().filter(|(k, _)| keep(k)) {
            let _ = write!(
                out,
                "{}\n    \"{}\": {}",
                if first { "" } else { "," },
                json_escape(k),
                json_num(*v)
            );
            first = false;
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"histograms\": {");
        first = true;
        for (k, h) in self.histograms.iter().filter(|(k, _)| keep(k)) {
            let bounds: Vec<String> = h.bounds.iter().map(|&b| json_num(b)).collect();
            let counts: Vec<String> = h.counts.iter().map(u64::to_string).collect();
            let _ = write!(
                out,
                "{}\n    \"{}\": {{\"bounds\": [{}], \"counts\": [{}], \"total\": {}, \"sum\": {}}}",
                if first { "" } else { "," },
                json_escape(k),
                bounds.join(", "),
                counts.join(", "),
                h.total,
                json_num(h.sum)
            );
            first = false;
        }
        out.push_str(if first { "}\n}\n" } else { "\n  }\n}\n" });
        out
    }

    /// A flat CSV dump (`kind,name,field,value` rows), deterministic
    /// like [`MetricsSnapshot::to_json`].
    #[must_use]
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("kind,name,field,value\n");
        for (k, v) in self.counters.iter().filter(|(k, _)| !Self::is_volatile(k)) {
            let _ = writeln!(out, "counter,{k},value,{v}");
        }
        for (k, v) in self.gauges.iter().filter(|(k, _)| !Self::is_volatile(k)) {
            let _ = writeln!(out, "gauge,{k},value,{}", json_num(*v));
        }
        for (k, h) in self.histograms.iter().filter(|(k, _)| !Self::is_volatile(k)) {
            for (i, c) in h.counts.iter().enumerate() {
                let bound = h.bounds.get(i).map_or("inf".to_string(), |b| json_num(*b));
                let _ = writeln!(out, "histogram,{k},le_{bound},{c}");
            }
            let _ = writeln!(out, "histogram,{k},total,{}", h.total);
            let _ = writeln!(out, "histogram,{k},sum,{}", json_num(h.sum));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let r = Registry::new();
        r.inc("a.count", 2);
        r.inc("a.count", 3);
        r.set_gauge("g", 1.5);
        r.observe("h", 10.0);
        r.observe("h", 100_000.0);
        assert_eq!(r.counter("a.count"), 5);
        assert_eq!(r.gauge("g"), Some(1.5));
        let snap = r.snapshot();
        assert_eq!(snap.histograms["h"].total, 2);
        assert_eq!(snap.histograms["h"].sum, 100_010.0);
        // 10 lands in the `<= 16` bucket, 100k in `<= 262144`.
        assert_eq!(snap.histograms["h"].counts[2], 1);
        assert_eq!(snap.histograms["h"].counts[9], 1);
    }

    #[test]
    fn histogram_overflow_bucket() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(50.0);
        assert_eq!(h.counts, vec![1, 1, 1]);
        assert_eq!(h.total, 3);
    }

    #[test]
    fn merge_requires_same_bounds_and_adds() {
        let mut a = Histogram::new(&[1.0, 10.0]);
        let mut b = Histogram::new(&[1.0, 10.0]);
        a.observe(0.5);
        b.observe(5.0);
        a.merge(&b);
        assert_eq!(a.counts, vec![1, 1, 0]);
        assert_eq!(a.total, 2);
    }

    #[test]
    fn volatile_keys_excluded_from_deterministic_dump() {
        let r = Registry::new();
        r.inc("pool.tasks", 7);
        r.inc("~pool.worker.0.tasks", 7);
        r.set_gauge("~pool.workers", 4.0);
        let snap = r.snapshot();
        let det = snap.to_json();
        assert!(det.contains("pool.tasks"));
        assert!(!det.contains("~pool"));
        let all = snap.to_json_all();
        assert!(all.contains("~pool.worker.0.tasks"));
        assert!(!snap.to_csv().contains("~pool"));
    }

    #[test]
    fn default_bounds_snapshot() {
        // The bucket grid is part of the metrics schema: changing it
        // invalidates stored BENCH_*.json comparisons, so it is pinned
        // here. (Satellite: histogram bucket boundaries snapshot-tested.)
        assert_eq!(
            DEFAULT_BOUNDS.to_vec(),
            vec![
                1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0,
                4194304.0, 16777216.0
            ]
        );
    }

    #[test]
    fn absorb_merges_registries() {
        let a = Registry::new();
        let b = Registry::new();
        a.inc("c", 1);
        b.inc("c", 2);
        b.set_gauge("g", 3.0);
        b.observe("h", 2.0);
        a.absorb(&b.snapshot());
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.gauge("g"), Some(3.0));
        assert_eq!(a.snapshot().histograms["h"].total, 1);
    }

    #[test]
    fn dumps_are_stable() {
        let r = Registry::new();
        r.inc("z.last", 1);
        r.inc("a.first", 2);
        r.observe("h", 3.0);
        let one = r.snapshot().to_json();
        let two = r.snapshot().to_json();
        assert_eq!(one, two);
        // BTreeMap ordering: "a.first" precedes "z.last".
        assert!(one.find("a.first").unwrap() < one.find("z.last").unwrap());
    }
}
