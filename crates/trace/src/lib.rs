//! # `q100-trace`: simulator observability
//!
//! The instrumentation layer of the Q100 reproduction. Three pieces,
//! all dependency-free and deterministic (no wall-clock, no global
//! state):
//!
//! * [`sink`] — a structured **event sink**: the [`TraceSink`] trait
//!   the timing simulator emits [`TraceEvent`]s into, a zero-cost
//!   [`NullSink`], and a bounded [`RingRecorder`]. Events cover
//!   temporal-instruction boundaries, per-quantum tile occupancy,
//!   stream-buffer spill/fill volumes, memory bandwidth samples, and
//!   per-link peak-bandwidth updates.
//! * [`metrics`] — a thread-safe **metrics registry** of counters,
//!   gauges, and fixed-bucket histograms. All mutation is commutative
//!   (counter adds, histogram observations), so values are identical
//!   regardless of how many sweep workers record concurrently; maps
//!   are ordered, so dumps are byte-stable. Keys starting with `~` are
//!   *volatile* (legitimately run-dependent, e.g. per-worker task
//!   counts) and excluded from the deterministic dump.
//! * [`export`] — exporters: Chrome `trace_event` JSON (one "process"
//!   per tile, loadable in `chrome://tracing` or Perfetto) and flat
//!   metrics JSON/CSV dumps, plus [`json`], a minimal JSON parser
//!   backing the [schema validators](validate) used by tests and CI.
//! * [`analyze`] — the **bottleneck attribution** layer: the
//!   [`BlameCause`]/[`BlameReport`] cycle-ledger data model the timing
//!   simulator fills in, plus critical-path extraction, utilization
//!   summaries, and analytical what-if estimates over it.
//!
//! The crate deliberately has no dependency on `q100-core`; the
//! simulator depends on *it* and reports tiles as endpoint indices
//! which exporters resolve through a caller-supplied name table.

pub mod analyze;
pub mod export;
pub mod json;
pub mod metrics;
pub mod sink;
pub mod validate;

pub use analyze::{
    critical_path, kind_utilization, link_utilization, utilization_histogram, what_ifs, BlameCause,
    BlameReport, CriticalPath, KindUtilization, LinkUtilization, NodeBlame, WhatIf,
};
pub use export::{chrome_trace_json, TraceStream};
pub use metrics::{Histogram, MetricsSnapshot, Registry, DEFAULT_BOUNDS};
pub use sink::{NullSink, RingRecorder, TraceEvent, TraceSink};
pub use validate::{validate_blame_json, validate_chrome_trace_json, validate_metrics_json};
