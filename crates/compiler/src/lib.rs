//! # `q100-compiler`: relational plans → Q100 spatial instructions
//!
//! The paper notes: *"As we do not yet have a compiler for the Q100, we
//! have manually implemented each TPC-H query in the Q100 ISA."* This
//! crate is that missing compiler for a practical subset of the
//! relational algebra: it lowers [`q100_dbms::Plan`] trees — scans,
//! filters, projections, inner/outer equijoins, single-key hash
//! aggregations, and sorts — into [`q100_core::QueryGraph`]s.
//!
//! Like a DBMS optimizer (and like the paper's hand planner), the
//! compiler consults **statistics**: it pre-executes subplans on the
//! software executor to size range-partition bounds for sorts and
//! scattered aggregations, choosing the paper's Figure 1 pattern
//! (partition → aggregate → append, sort-free) when the group domain is
//! small and partition → sort → aggregate otherwise.
//!
//! # Example
//!
//! ```
//! use q100_columnar::{Column, MemoryCatalog, Table};
//! use q100_compiler::compile;
//! use q100_dbms::{AggKind, CmpKind, Expr, Plan};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let t = Table::new(vec![
//!     Column::from_ints("g", vec![1, 2, 1, 2]),
//!     Column::from_ints("v", vec![10, 20, 30, 40]),
//! ])?;
//! let catalog = MemoryCatalog::new(vec![("t".to_string(), t)]);
//!
//! let plan = Plan::scan("t", &["g", "v"])
//!     .filter(Expr::col("v").cmp(CmpKind::Gt, Expr::int(15)))
//!     .aggregate(&["g"], vec![("total", AggKind::Sum, Expr::col("v"))]);
//!
//! let graph = compile(&plan, &catalog)?;
//! let run = q100_core::execute(&graph, &catalog)?;
//! let result = run.result_table(&graph)?;
//! assert_eq!(result.row_count(), 2);
//! # Ok(())
//! # }
//! ```

mod error;
mod expr;
mod lower;

pub use error::{CompileError, Result};
pub use lower::{compile, Compiler};
