//! Compilation errors.

use std::error::Error;
use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, CompileError>;

/// Errors raised while lowering a plan to Q100 instructions.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// A plan construct the Q100 lowering does not (yet) support.
    Unsupported(String),
    /// A referenced column is absent from the subplan's schema.
    UnknownColumn(String),
    /// The statistics pre-execution failed.
    Stats(String),
    /// Graph construction failed.
    Core(q100_core::CoreError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Unsupported(what) => write!(f, "unsupported construct: {what}"),
            CompileError::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            CompileError::Stats(msg) => write!(f, "statistics pre-execution failed: {msg}"),
            CompileError::Core(e) => write!(f, "graph construction failed: {e}"),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<q100_core::CoreError> for CompileError {
    fn from(e: q100_core::CoreError) -> Self {
        CompileError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_meaningful() {
        let e = CompileError::Unsupported("CountDistinct".into());
        assert!(e.to_string().contains("CountDistinct"));
        let e = CompileError::UnknownColumn("x".into());
        assert!(e.to_string().contains("`x`"));
    }
}
