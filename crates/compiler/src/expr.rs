//! Expression lowering: [`q100_dbms::Expr`] trees → BoolGen / ALU
//! instruction chains.

use q100_columnar::Value;
use q100_core::{AluOp, CmpOp, GraphBuilder, PortRef};
use q100_dbms::{ArithKind, CmpKind, Expr};

use crate::error::{CompileError, Result};

/// Resolves a column name to its port in the current relation.
pub(crate) trait ColumnEnv {
    fn port(&self, name: &str) -> Option<PortRef>;
}

impl ColumnEnv for [(String, PortRef)] {
    fn port(&self, name: &str) -> Option<PortRef> {
        self.iter().find(|(n, _)| n == name).map(|(_, p)| *p)
    }
}

fn cmp_op(kind: CmpKind) -> CmpOp {
    match kind {
        CmpKind::Eq => CmpOp::Eq,
        CmpKind::Neq => CmpOp::Neq,
        CmpKind::Lt => CmpOp::Lt,
        CmpKind::Lte => CmpOp::Lte,
        CmpKind::Gt => CmpOp::Gt,
        CmpKind::Gte => CmpOp::Gte,
    }
}

fn flip(kind: CmpKind) -> CmpKind {
    match kind {
        CmpKind::Eq => CmpKind::Eq,
        CmpKind::Neq => CmpKind::Neq,
        CmpKind::Lt => CmpKind::Gt,
        CmpKind::Lte => CmpKind::Gte,
        CmpKind::Gt => CmpKind::Lt,
        CmpKind::Gte => CmpKind::Lte,
    }
}

fn arith_op(kind: ArithKind) -> AluOp {
    match kind {
        ArithKind::Add => AluOp::Add,
        ArithKind::Sub => AluOp::Sub,
        ArithKind::Mul => AluOp::Mul,
        ArithKind::Div => AluOp::Div,
    }
}

/// Lowers an expression into instructions appended to `b`, returning
/// the port of the resulting column.
///
/// # Errors
///
/// Returns [`CompileError::Unsupported`] for shapes without a Q100
/// counterpart: bare constants outside an operator, constants on the
/// non-commutative left of `-`/`/`, and constant-only operands.
pub(crate) fn lower_expr(
    b: &mut GraphBuilder,
    env: &[(String, PortRef)],
    expr: &Expr,
) -> Result<PortRef> {
    match expr {
        Expr::Col(name) => env.port(name).ok_or_else(|| CompileError::UnknownColumn(name.clone())),
        Expr::Const(_) => Err(CompileError::Unsupported(
            "bare constant outside a comparison or arithmetic operator".into(),
        )),
        Expr::Cmp(kind, lhs, rhs) => match (lhs.as_ref(), rhs.as_ref()) {
            (Expr::Const(v), Expr::Const(_)) => {
                let _ = v;
                Err(CompileError::Unsupported("constant-to-constant comparison".into()))
            }
            (Expr::Const(v), other) => {
                let col = lower_expr(b, env, other)?;
                Ok(b.bool_gen_const(col, cmp_op(flip(*kind)), v.clone()))
            }
            (other, Expr::Const(v)) => {
                let col = lower_expr(b, env, other)?;
                Ok(b.bool_gen_const(col, cmp_op(*kind), v.clone()))
            }
            (l, r) => {
                let lc = lower_expr(b, env, l)?;
                let rc = lower_expr(b, env, r)?;
                Ok(b.bool_gen(lc, cmp_op(*kind), rc))
            }
        },
        Expr::Arith(kind, lhs, rhs) => match (lhs.as_ref(), rhs.as_ref()) {
            (Expr::Const(_), Expr::Const(_)) => {
                Err(CompileError::Unsupported("constant-only arithmetic".into()))
            }
            (Expr::Const(v), other) => {
                // Constants commute for + and *; the ALU has no
                // const-minuend subtract or const-dividend divide.
                match kind {
                    ArithKind::Add | ArithKind::Mul => {
                        let col = lower_expr(b, env, other)?;
                        Ok(b.alu_const(col, arith_op(*kind), v.clone()))
                    }
                    ArithKind::Sub | ArithKind::Div => Err(CompileError::Unsupported(
                        "constant on the left of a non-commutative operator".into(),
                    )),
                }
            }
            (other, Expr::Const(v)) => {
                let col = lower_expr(b, env, other)?;
                Ok(b.alu_const(col, arith_op(*kind), v.clone()))
            }
            (l, r) => {
                let lc = lower_expr(b, env, l)?;
                let rc = lower_expr(b, env, r)?;
                Ok(b.alu(lc, arith_op(*kind), rc))
            }
        },
        Expr::And(l, r) => {
            let lc = lower_expr(b, env, l)?;
            let rc = lower_expr(b, env, r)?;
            Ok(b.alu(lc, AluOp::And, rc))
        }
        Expr::Or(l, r) => {
            let lc = lower_expr(b, env, l)?;
            let rc = lower_expr(b, env, r)?;
            Ok(b.alu(lc, AluOp::Or, rc))
        }
        Expr::Not(inner) => {
            let c = lower_expr(b, env, inner)?;
            Ok(b.alu_not(c))
        }
        Expr::InList(inner, values) => {
            if values.is_empty() {
                return Err(CompileError::Unsupported("empty IN list".into()));
            }
            let col = lower_expr(b, env, inner)?;
            let mut acc: Option<PortRef> = None;
            for v in values {
                let eq = b.bool_gen_const(col, CmpOp::Eq, v.clone());
                acc = Some(match acc {
                    None => eq,
                    Some(prev) => b.alu(prev, AluOp::Or, eq),
                });
            }
            Ok(acc.expect("non-empty list"))
        }
    }
}

/// Columns referenced by an expression, used to avoid selecting unused
/// columns out of the current relation.
pub(crate) fn referenced_columns(expr: &Expr, into: &mut Vec<String>) {
    match expr {
        Expr::Col(name) => {
            if !into.iter().any(|n| n == name) {
                into.push(name.clone());
            }
        }
        Expr::Const(_) => {}
        Expr::Cmp(_, a, c) | Expr::Arith(_, a, c) | Expr::And(a, c) | Expr::Or(a, c) => {
            referenced_columns(a, into);
            referenced_columns(c, into);
        }
        Expr::Not(a) | Expr::InList(a, _) => referenced_columns(a, into),
    }
}

/// A `Value` placeholder re-export used by unit tests.
#[allow(dead_code)]
pub(crate) fn _value_ty(v: &Value) -> q100_columnar::LogicalType {
    v.ty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use q100_columnar::{Column, MemoryCatalog, Table};
    use q100_core::QueryGraph;

    fn env_with(b: &mut GraphBuilder) -> Vec<(String, PortRef)> {
        let x = b.col_select_base("t", "x");
        let y = b.col_select_base("t", "y");
        vec![("x".into(), x), ("y".into(), y)]
    }

    fn run_expr(expr: &Expr) -> Vec<i64> {
        let t =
            Table::new(vec![Column::from_ints("x", [1, 5, 10]), Column::from_ints("y", [4, 5, 6])])
                .unwrap();
        let cat = MemoryCatalog::new(vec![("t".into(), t.clone())]);
        let mut b = QueryGraph::builder("e");
        let env = env_with(&mut b);
        let port = lower_expr(&mut b, &env, expr).unwrap();
        let g = b.finish().unwrap();
        let run = q100_core::execute(&g, &cat).unwrap();
        let col = run.outputs[port.node][port.port].as_col(0).unwrap().clone();
        // Cross-check against the software evaluator.
        let sw = expr.eval(&t).unwrap();
        assert_eq!(col.data(), &sw.data[..], "lowered expr diverges from software");
        col.data().to_vec()
    }

    #[test]
    fn comparisons_and_flipping() {
        assert_eq!(run_expr(&Expr::col("x").cmp(CmpKind::Gt, Expr::int(4))), vec![0, 1, 1]);
        // Constant on the left flips.
        assert_eq!(run_expr(&Expr::int(4).cmp(CmpKind::Gt, Expr::col("x"))), vec![1, 0, 0]);
        assert_eq!(run_expr(&Expr::col("x").eq(Expr::col("y"))), vec![0, 1, 0]);
    }

    #[test]
    fn arithmetic_trees() {
        let e = Expr::col("x")
            .arith(ArithKind::Mul, Expr::int(3))
            .arith(ArithKind::Add, Expr::col("y"));
        assert_eq!(run_expr(&e), vec![7, 20, 36]);
        let commuted = Expr::int(3).arith(ArithKind::Mul, Expr::col("x"));
        assert_eq!(run_expr(&commuted), vec![3, 15, 30]);
    }

    #[test]
    fn logic_and_in_list() {
        let e = Expr::col("x")
            .cmp(CmpKind::Gte, Expr::int(5))
            .and(Expr::col("y").cmp(CmpKind::Lte, Expr::int(5)).negate());
        assert_eq!(run_expr(&e), vec![0, 0, 1]);
        let e = Expr::col("x").in_list(vec![Value::Int(1), Value::Int(10)]);
        assert_eq!(run_expr(&e), vec![1, 0, 1]);
    }

    #[test]
    fn unsupported_shapes_error() {
        let mut b = QueryGraph::builder("u");
        let env = env_with(&mut b);
        assert!(matches!(
            lower_expr(&mut b, &env, &Expr::int(3)),
            Err(CompileError::Unsupported(_))
        ));
        let bad = Expr::int(1).arith(ArithKind::Sub, Expr::col("x"));
        assert!(matches!(lower_expr(&mut b, &env, &bad), Err(CompileError::Unsupported(_))));
        assert!(matches!(
            lower_expr(&mut b, &env, &Expr::col("zz")),
            Err(CompileError::UnknownColumn(_))
        ));
    }

    #[test]
    fn referenced_columns_dedup() {
        let e = Expr::col("x")
            .arith(ArithKind::Add, Expr::col("x").arith(ArithKind::Mul, Expr::col("y")));
        let mut cols = Vec::new();
        referenced_columns(&e, &mut cols);
        assert_eq!(cols, vec!["x".to_string(), "y".to_string()]);
    }
}
