//! Plan lowering: relational operators → spatial-instruction patterns.

use q100_columnar::{Catalog, Table, Value};
use q100_core::{AggOp, AluOp, GraphBuilder, PortRef, QueryGraph, SORTER_BATCH};
use q100_dbms::{AggKind, Expr, JoinType, Plan};

use crate::error::{CompileError, Result};
use crate::expr::lower_expr;

/// A compiled relation: the port of a table stream plus its column
/// names in order.
#[derive(Debug, Clone)]
struct Rel {
    table: PortRef,
    columns: Vec<String>,
}

/// Compiles a relational plan into a Q100 query graph.
///
/// Equivalent to [`Compiler::new(catalog).compile(plan)`](Compiler).
///
/// # Errors
///
/// Returns [`CompileError::Unsupported`] for constructs outside the
/// supported subset (semi/anti joins, `CountDistinct`, multi-column
/// grouping or sorting keys — all expressible by pre-packing keys with
/// a `Project`, as the hand-written TPC-H plans demonstrate).
pub fn compile(plan: &Plan, catalog: &dyn Catalog) -> Result<QueryGraph> {
    Compiler::new(catalog).compile(plan)
}

/// The plan compiler. Holds the catalog it consults for statistics
/// (range-partition bounds are sized by pre-executing subplans on the
/// software executor, standing in for optimizer cardinality estimates).
pub struct Compiler<'a> {
    catalog: &'a dyn Catalog,
}

impl<'a> Compiler<'a> {
    /// Creates a compiler over a catalog.
    #[must_use]
    pub fn new(catalog: &'a dyn Catalog) -> Self {
        Compiler { catalog }
    }

    /// Compiles `plan` to a query graph whose single sink produces the
    /// plan's result table.
    ///
    /// # Errors
    ///
    /// See [`compile`].
    pub fn compile(&self, plan: &Plan) -> Result<QueryGraph> {
        let mut b = QueryGraph::builder("compiled");
        let _rel = self.lower(&mut b, plan)?;
        b.finish().map_err(Into::into)
    }

    /// Pre-executes a subplan on the software executor to obtain the
    /// statistics a real optimizer would estimate.
    fn stats(&self, plan: &Plan) -> Result<Table> {
        q100_dbms::run(plan, self.catalog)
            .map(|(t, _)| t)
            .map_err(|e| CompileError::Stats(e.to_string()))
    }

    fn lower(&self, b: &mut GraphBuilder, plan: &Plan) -> Result<Rel> {
        match plan {
            Plan::Scan { table, columns } => {
                let ports: Vec<PortRef> =
                    columns.iter().map(|c| b.col_select_base(table.clone(), c.clone())).collect();
                let t = b.stitch(&ports);
                Ok(Rel { table: t, columns: columns.clone() })
            }
            Plan::Filter { input, predicate } => {
                let rel = self.lower(b, input)?;
                let env = select_all(b, &rel);
                let keep = lower_expr(b, &env, predicate)?;
                let filtered: Vec<PortRef> =
                    env.iter().map(|(_, port)| b.col_filter(*port, keep)).collect();
                for ((name, _), port) in env.iter().zip(&filtered) {
                    b.name_output(*port, name.clone());
                }
                let t = b.stitch(&filtered);
                Ok(Rel { table: t, columns: rel.columns })
            }
            Plan::Project { input, exprs } => {
                let rel = self.lower(b, input)?;
                // Select only the columns computed expressions touch;
                // unreferenced selections would dangle as extra sinks.
                let mut referenced = Vec::new();
                for (_, expr) in exprs {
                    if !matches!(expr, Expr::Col(_)) {
                        crate::expr::referenced_columns(expr, &mut referenced);
                    }
                }
                let env = select_cols(b, &rel, &referenced)?;
                let mut out_ports = Vec::with_capacity(exprs.len());
                let mut out_names = Vec::with_capacity(exprs.len());
                for (name, expr) in exprs {
                    // Pass-through references get a fresh ColSelect so
                    // each projection owns its output name.
                    let port = if let Expr::Col(src) = expr {
                        if !rel.columns.iter().any(|c| c == src) {
                            return Err(CompileError::UnknownColumn(src.clone()));
                        }
                        b.col_select(rel.table, src.clone())
                    } else {
                        lower_expr(b, &env, expr)?
                    };
                    b.name_output(port, name.clone());
                    out_ports.push(port);
                    out_names.push(name.clone());
                }
                let t = b.stitch(&out_ports);
                Ok(Rel { table: t, columns: out_names })
            }
            Plan::HashJoin { left, right, left_keys, right_keys, join_type } => {
                self.lower_join(b, left, right, left_keys, right_keys, *join_type)
            }
            Plan::Aggregate { input, group_by, aggs } => {
                self.lower_aggregate(b, input, group_by, aggs)
            }
            Plan::Sort { input, keys } => self.lower_sort(b, input, keys),
        }
    }

    fn lower_join(
        &self,
        b: &mut GraphBuilder,
        left: &Plan,
        right: &Plan,
        left_keys: &[String],
        right_keys: &[String],
        join_type: JoinType,
    ) -> Result<Rel> {
        let outer = match join_type {
            JoinType::Inner => false,
            JoinType::LeftOuter => true,
            JoinType::LeftSemi | JoinType::LeftAnti => {
                return Err(CompileError::Unsupported(
                    "semi/anti joins (rewrite as join against a deduplicated key table)".into(),
                ))
            }
        };
        let lrel = self.lower(b, left)?;
        let rrel = self.lower(b, right)?;
        for k in left_keys.iter() {
            if !lrel.columns.iter().any(|c| c == k) {
                return Err(CompileError::UnknownColumn(k.clone()));
            }
        }
        for k in right_keys.iter() {
            if !rrel.columns.iter().any(|c| c == k) {
                return Err(CompileError::UnknownColumn(k.clone()));
            }
        }
        match (left_keys, right_keys) {
            ([lkey], [rkey]) => {
                let joined = if outer {
                    b.join_outer(lrel.table, lkey.clone(), rrel.table, rkey.clone())
                } else {
                    b.join(lrel.table, lkey.clone(), rrel.table, rkey.clone())
                };
                let columns = joined_columns(&lrel.columns, &rrel.columns);
                Ok(Rel { table: joined, columns })
            }
            ([lk1, lk2], [rk1, rk2]) => {
                // Composite keys via the concatenator (values must fit
                // 31 bits, the tile's packing constraint).
                let lk = rekey(b, &lrel, lk1, lk2, "__lk")?;
                let rk = rekey(b, &rrel, rk1, rk2, "__rk")?;
                let joined = if outer {
                    b.join_outer(lk.table, "__lk", rk.table, "__rk")
                } else {
                    b.join(lk.table, "__lk", rk.table, "__rk")
                };
                // Drop the synthetic key columns again.
                let all = joined_columns(&lk.columns, &rk.columns);
                let keep: Vec<String> =
                    all.into_iter().filter(|c| c != "__lk" && c != "__rk").collect();
                let ports: Vec<PortRef> = keep
                    .iter()
                    .map(|c| {
                        let p = b.col_select(joined, c.clone());
                        b.name_output(p, c.clone());
                        p
                    })
                    .collect();
                let t = b.stitch(&ports);
                Ok(Rel { table: t, columns: keep })
            }
            _ => Err(CompileError::Unsupported(format!(
                "join on {} left / {} right key columns (use matching 1- or 2-column keys, \
                 pre-packing wider ones with a Project)",
                left_keys.len(),
                right_keys.len()
            ))),
        }
    }

    fn lower_aggregate(
        &self,
        b: &mut GraphBuilder,
        input: &Plan,
        group_by: &[String],
        aggs: &[(String, AggKind, Expr)],
    ) -> Result<Rel> {
        if group_by.len() > 1 {
            return Err(CompileError::Unsupported(
                "multi-column GROUP BY (pre-pack the key with a Project)".into(),
            ));
        }
        // Resolve every aggregation's tile op up front, so unsupported
        // kinds surface as typed errors before any graph is built.
        let ops: Vec<AggOp> =
            aggs.iter().map(|(_, kind, _)| agg_op(kind)).collect::<Result<_>>()?;
        if ops.is_empty() {
            return Err(CompileError::Unsupported(
                "aggregate with zero aggregations (a bare GROUP BY — add a COUNT)".into(),
            ));
        }
        let rel = self.lower(b, input)?;
        // Select the group column plus whatever the aggregate arguments
        // reference (unreferenced selections would dangle as sinks).
        let mut referenced: Vec<String> = group_by.to_vec();
        for (_, kind, expr) in aggs {
            if !matches!(kind, AggKind::Count) {
                crate::expr::referenced_columns(expr, &mut referenced);
            }
        }
        if referenced.is_empty() {
            referenced.push(
                rel.columns.first().cloned().ok_or_else(|| {
                    CompileError::Unsupported("aggregate over zero columns".into())
                })?,
            );
        }
        let env = select_cols(b, &rel, &referenced)?;

        // The grouping key: a real column, or a synthesized constant
        // zero for global aggregation.
        let (group_port, bounds, presort) = if let Some(g) = group_by.first() {
            let gp = env
                .iter()
                .find(|(n, _)| n == g)
                .map(|(_, p)| *p)
                .ok_or_else(|| CompileError::UnknownColumn(g.clone()))?;
            // Statistics: pre-execute the input to size the partitions.
            let stats = self.stats(input)?;
            let gcol = stats.column(g).map_err(|e| CompileError::Stats(e.to_string()))?;
            let mut distinct: Vec<i64> = gcol.data().to_vec();
            distinct.sort_unstable();
            distinct.dedup();
            if distinct.len() <= 64 {
                // Figure 1 pattern: one partition per group value, no sort.
                let bounds: Vec<i64> = distinct.into_iter().skip(1).collect();
                (gp, bounds, false)
            } else {
                let mut values = gcol.data().to_vec();
                values.sort_unstable();
                let step = SORTER_BATCH / 2;
                let mut bounds = Vec::new();
                let mut i = step;
                while i < values.len() {
                    let bnd = values[i];
                    if Some(&bnd) != bounds.last() {
                        bounds.push(bnd);
                    }
                    i += step;
                }
                (gp, bounds, true)
            }
        } else {
            let first = env
                .first()
                .map(|(_, p)| *p)
                .ok_or_else(|| CompileError::Unsupported("aggregate over zero columns".into()))?;
            let zero = b.alu_const(first, AluOp::Mul, Value::Int(0));
            b.name_output(zero, "__zero");
            (zero, Vec::new(), false)
        };

        // Argument columns, one per aggregation. Each argument gets a
        // fresh ALU pass-through so it owns its `__a<i>` output name
        // even when it aliases the group column or another argument.
        let mut arg_ports = Vec::with_capacity(aggs.len());
        for (i, (_, kind, expr)) in aggs.iter().enumerate() {
            let src = match (kind, expr) {
                // COUNT ignores its argument; count the group column.
                (AggKind::Count, _) => group_port,
                (_, e) => lower_expr(b, &env, e)?,
            };
            let copy = b.alu_const(src, AluOp::Mul, Value::Int(1));
            b.name_output(copy, format!("__a{i}"));
            arg_ports.push(copy);
        }

        let gname = group_by.first().cloned().unwrap_or_else(|| "__zero".to_string());
        let mut cols = vec![group_port];
        cols.extend(&arg_ports);
        let staged = b.stitch(&cols);

        let parts = if bounds.is_empty() {
            vec![staged]
        } else {
            b.partition(staged, gname.clone(), bounds)
        };
        // The aggregator tile names its output `<op>_<data column>`.
        let agg_col_name =
            |op: AggOp, i: usize| format!("{}_{}", op, format_args!("__a{i}")).to_lowercase();
        let mut partials = Vec::with_capacity(parts.len());
        for part in parts {
            let part = if presort { b.sort(part, gname.clone()) } else { part };
            let g = b.col_select(part, gname.clone());
            let mut agg_tables = Vec::with_capacity(aggs.len());
            for (i, &op) in ops.iter().enumerate() {
                let d = b.col_select(part, format!("__a{i}"));
                agg_tables.push((b.aggregate(op, d, g), op, i));
            }
            // Re-stitch [group, agg0, agg1, ...]; the aggregates share
            // group runs, so rows align. `ops` is non-empty (checked
            // above), so the first aggregate table always exists.
            let Some(&(first, _, _)) = agg_tables.first() else {
                return Err(CompileError::Unsupported("aggregate with zero aggregations".into()));
            };
            let gout = b.col_select(first, gname.clone());
            let mut out_cols = vec![gout];
            for &(t, op, i) in &agg_tables {
                let c = b.col_select(t, agg_col_name(op, i));
                out_cols.push(c);
            }
            partials.push(b.stitch(&out_cols));
        }
        let combined = b.append_all(&partials);

        // Final projection to the caller's column names; a global
        // aggregate also drops the synthetic zero key (matching the
        // software executor's output shape).
        let mut final_ports = Vec::new();
        let mut final_names = Vec::new();
        if let Some(g) = group_by.first() {
            let p = b.col_select(combined, g.clone());
            b.name_output(p, g.clone());
            final_ports.push(p);
            final_names.push(g.clone());
        }
        for (i, ((name, _, _), &op)) in aggs.iter().zip(&ops).enumerate() {
            let p = b.col_select(combined, agg_col_name(op, i));
            b.name_output(p, name.clone());
            final_ports.push(p);
            final_names.push(name.clone());
        }
        let t = b.stitch(&final_ports);
        Ok(Rel { table: t, columns: final_names })
    }

    fn lower_sort(
        &self,
        b: &mut GraphBuilder,
        input: &Plan,
        keys: &[(String, bool)],
    ) -> Result<Rel> {
        let [(key, descending)] = keys else {
            return Err(CompileError::Unsupported(
                "multi-column ORDER BY (pre-pack the key with a Project)".into(),
            ));
        };
        let descending = *descending;
        let rel = self.lower(b, input)?;
        if !rel.columns.iter().any(|c| c == key) {
            return Err(CompileError::UnknownColumn(key.clone()));
        }
        let stats = self.stats(input)?;
        let n = stats.row_count();
        let sorted = if n <= SORTER_BATCH {
            if descending {
                b.sort_desc(rel.table, key.clone())
            } else {
                b.sort(rel.table, key.clone())
            }
        } else {
            let kcol = stats.column(key).map_err(|e| CompileError::Stats(e.to_string()))?;
            let mut values = kcol.data().to_vec();
            values.sort_unstable();
            let step = SORTER_BATCH / 2;
            let mut bounds = Vec::new();
            let mut i = step;
            while i < values.len() {
                let bnd = values[i];
                if Some(&bnd) != bounds.last() {
                    bounds.push(bnd);
                }
                i += step;
            }
            let mut parts = b.partition(rel.table, key.clone(), bounds);
            if descending {
                parts.reverse();
            }
            let sorted: Vec<PortRef> =
                parts
                    .into_iter()
                    .map(|p| {
                        if descending {
                            b.sort_desc(p, key.clone())
                        } else {
                            b.sort(p, key.clone())
                        }
                    })
                    .collect();
            b.append_all(&sorted)
        };
        Ok(Rel { table: sorted, columns: rel.columns })
    }
}

/// Maps an aggregation kind to its aggregator-tile op.
fn agg_op(kind: &AggKind) -> Result<AggOp> {
    match kind {
        AggKind::Sum => Ok(AggOp::Sum),
        AggKind::Min => Ok(AggOp::Min),
        AggKind::Max => Ok(AggOp::Max),
        AggKind::Count => Ok(AggOp::Count),
        AggKind::Avg => Ok(AggOp::Avg),
        AggKind::CountDistinct => Err(CompileError::Unsupported(
            "COUNT(DISTINCT) (compose two aggregations, as TPC-H Q16 does)".into(),
        )),
    }
}

/// Selects the named columns of a relation (deduplicated), returning
/// the `(name, port)` environment expressions lower against.
fn select_cols(
    b: &mut GraphBuilder,
    rel: &Rel,
    names: &[String],
) -> Result<Vec<(String, PortRef)>> {
    let mut env = Vec::with_capacity(names.len());
    for name in names {
        if env.iter().any(|(n, _): &(String, PortRef)| n == name) {
            continue;
        }
        if !rel.columns.iter().any(|c| c == name) {
            return Err(CompileError::UnknownColumn(name.clone()));
        }
        env.push((name.clone(), b.col_select(rel.table, name.clone())));
    }
    Ok(env)
}

/// Selects every column of a relation, returning the `(name, port)`
/// environment expressions lower against.
fn select_all(b: &mut GraphBuilder, rel: &Rel) -> Vec<(String, PortRef)> {
    rel.columns.iter().map(|c| (c.clone(), b.col_select(rel.table, c.clone()))).collect()
}

/// Prefixes a relation with a concatenated composite key column named
/// `key_name` (the Concat tile's multi-attribute key pattern).
fn rekey(b: &mut GraphBuilder, rel: &Rel, k1: &str, k2: &str, key_name: &str) -> Result<Rel> {
    let a = b.col_select(rel.table, k1.to_string());
    let c = b.col_select(rel.table, k2.to_string());
    let key = b.concat(a, c);
    b.name_output(key, key_name.to_string());
    let mut ports = vec![key];
    let mut names = vec![key_name.to_string()];
    for col in &rel.columns {
        let p = b.col_select(rel.table, col.clone());
        b.name_output(p, col.clone());
        ports.push(p);
        names.push(col.clone());
    }
    let t = b.stitch(&ports);
    Ok(Rel { table: t, columns: names })
}

/// The output column names of a join: left columns, then right columns
/// with `_r` appended until unique — mirroring both engines' naming.
fn joined_columns(left: &[String], right: &[String]) -> Vec<String> {
    let mut out: Vec<String> = left.to_vec();
    for r in right {
        let mut name = r.clone();
        while out.contains(&name) {
            name.push_str("_r");
        }
        out.push(name);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use q100_columnar::{Column, MemoryCatalog};
    use q100_dbms::CmpKind;

    fn catalog() -> MemoryCatalog {
        let orders = Table::new(vec![
            Column::from_ints("o_key", (1..=50).collect::<Vec<_>>()),
            Column::from_ints("o_cust", (1..=50).map(|k| k % 7).collect::<Vec<_>>()),
        ])
        .unwrap();
        let items = Table::new(vec![
            Column::from_ints("i_order", (0..200).map(|i| i % 50 + 1).collect::<Vec<_>>()),
            Column::from_ints("i_qty", (0..200).map(|i| i % 13).collect::<Vec<_>>()),
        ])
        .unwrap();
        MemoryCatalog::new(vec![("orders".into(), orders), ("items".into(), items)])
    }

    /// Compiles, executes, and cross-checks a plan against the software
    /// executor.
    fn check(plan: &Plan) {
        let cat = catalog();
        let graph = compile(plan, &cat).unwrap();
        let run = q100_core::execute(&graph, &cat).unwrap();
        let got = run.result_table(&graph).unwrap();
        let (want, _) = q100_dbms::run(plan, &cat).unwrap();
        let mut g: Vec<Vec<String>> = (0..got.row_count())
            .map(|r| got.row(r).iter().map(ToString::to_string).collect())
            .collect();
        let mut w: Vec<Vec<String>> = (0..want.row_count())
            .map(|r| want.row(r).iter().map(ToString::to_string).collect())
            .collect();
        g.sort();
        w.sort();
        assert_eq!(g, w, "compiled result diverges for {plan}");
    }

    #[test]
    fn scan_filter_project_roundtrip() {
        check(
            &Plan::scan("items", &["i_order", "i_qty"])
                .filter(Expr::col("i_qty").cmp(CmpKind::Gte, Expr::int(5)))
                .project(vec![
                    ("o", Expr::col("i_order")),
                    ("double", Expr::col("i_qty").arith(q100_dbms::ArithKind::Mul, Expr::int(2))),
                ]),
        );
    }

    #[test]
    fn single_key_join_roundtrip() {
        check(&Plan::scan("orders", &["o_key", "o_cust"]).join(
            Plan::scan("items", &["i_order", "i_qty"]),
            &["o_key"],
            &["i_order"],
        ));
    }

    #[test]
    fn outer_join_roundtrip() {
        // Restrict items so some orders are unmatched.
        let items = Plan::scan("items", &["i_order", "i_qty"])
            .filter(Expr::col("i_order").cmp(CmpKind::Lte, Expr::int(10)));
        check(&Plan::scan("orders", &["o_key", "o_cust"]).join_as(
            items,
            &["o_key"],
            &["i_order"],
            JoinType::LeftOuter,
        ));
    }

    #[test]
    fn small_domain_aggregate_uses_figure_1_pattern() {
        let plan = Plan::scan("orders", &["o_key", "o_cust"]).aggregate(
            &["o_cust"],
            vec![
                ("n", AggKind::Count, Expr::int(1)),
                ("max_key", AggKind::Max, Expr::col("o_key")),
            ],
        );
        let cat = catalog();
        let graph = compile(&plan, &cat).unwrap();
        // No sorter needed: the 7-value domain partitions exactly.
        let hist = graph.kind_histogram();
        assert_eq!(hist[q100_core::TileKind::Sorter as usize], 0);
        check(&plan);
    }

    #[test]
    fn global_aggregate_roundtrip() {
        check(
            &Plan::scan("items", &["i_order", "i_qty"])
                .aggregate(&[], vec![("total", AggKind::Sum, Expr::col("i_qty"))]),
        );
    }

    #[test]
    fn sort_roundtrip() {
        check(&Plan::scan("items", &["i_order", "i_qty"]).sort(&[("i_qty", false)]));
        check(&Plan::scan("items", &["i_order", "i_qty"]).sort(&[("i_qty", true)]));
    }

    #[test]
    fn composite_key_join_roundtrip() {
        let l = Plan::scan("items", &["i_order", "i_qty"])
            .aggregate(&["i_order"], vec![("q", AggKind::Max, Expr::col("i_qty"))])
            .project(vec![("k1", Expr::col("i_order")), ("k2", Expr::col("q"))]);
        let r = Plan::scan("items", &["i_order", "i_qty"]);
        check(&l.join(r, &["k1", "k2"], &["i_order", "i_qty"]));
    }

    #[test]
    fn unsupported_constructs_report_clearly() {
        let cat = catalog();
        let semi = Plan::scan("orders", &["o_key"]).join_as(
            Plan::scan("items", &["i_order"]),
            &["o_key"],
            &["i_order"],
            JoinType::LeftSemi,
        );
        assert!(matches!(compile(&semi, &cat), Err(CompileError::Unsupported(_))));

        let cd = Plan::scan("items", &["i_order"])
            .aggregate(&[], vec![("n", AggKind::CountDistinct, Expr::col("i_order"))]);
        assert!(matches!(compile(&cd, &cat), Err(CompileError::Unsupported(_))));

        let multi = Plan::scan("items", &["i_order", "i_qty"])
            .sort(&[("i_order", false), ("i_qty", false)]);
        assert!(matches!(compile(&multi, &cat), Err(CompileError::Unsupported(_))));
    }
}
