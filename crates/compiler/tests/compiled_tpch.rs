//! End-to-end: compile real TPC-H software plans to Q100 graphs and
//! validate the results against the software executor — the workflow
//! the paper performed by hand.

use q100_compiler::compile;
use q100_tpch::{queries, TpchData};

/// Queries whose software plans fall inside the compiler's supported
/// subset (single-column group/sort keys, inner joins, no semi/anti).
const COMPILABLE: [&str; 4] = ["q1", "q6", "q12", "q18"];

#[test]
fn tpch_plans_compile_and_validate() {
    let db = TpchData::generate(0.002);
    for name in COMPILABLE {
        let query = queries::by_name(name).unwrap();
        let plan = (query.software)();
        let graph = compile(&plan, &db).unwrap_or_else(|e| panic!("{name}: compile failed: {e}"));
        let run = q100_core::execute_lean(&graph, &db)
            .unwrap_or_else(|e| panic!("{name}: compiled graph failed: {e}"));
        let got = run.result_table(&graph).unwrap();
        let (want, _) = q100_dbms::run(&plan, &db).unwrap();
        assert_eq!(
            queries::canonical_rows(&got),
            queries::canonical_rows(&want),
            "{name}: compiled Q100 result diverges from software"
        );
    }
}

#[test]
fn compiled_graphs_schedule_and_simulate() {
    let db = TpchData::generate(0.002);
    let query = queries::by_name("q6").unwrap();
    let graph = compile(&(query.software)(), &db).unwrap();
    let outcome =
        q100_core::Simulator::new(&q100_core::SimConfig::pareto()).run(&graph, &db).unwrap();
    assert!(outcome.cycles > 0);
    assert!(outcome.energy_mj() > 0.0);
}

#[test]
fn hand_written_plans_beat_compiled_ones_or_match() {
    // The hand-written q1 exploits the same Figure 1 pattern the
    // compiler picks; instruction counts should be in the same ballpark
    // (the compiler is allowed some overhead from full-relation
    // re-stitching).
    let db = TpchData::generate(0.002);
    let query = queries::by_name("q1").unwrap();
    let hand = (query.q100)(&db).unwrap();
    let compiled = compile(&(query.software)(), &db).unwrap();
    assert!(
        compiled.len() <= hand.len() * 4,
        "compiled q1 uses {} sinsts vs {} hand-written",
        compiled.len(),
        hand.len()
    );
}
