//! CI perf-regression gate: diffs a freshly generated `q100-bench-v1`
//! perf report against the committed baseline and fails when any
//! deterministic cycle count drifted beyond the tolerance.
//!
//! ```text
//! compare-bench <baseline.json> <fresh.json> [--tolerance <pct>] [--verbose]
//! ```
//!
//! Compared keys, all `--jobs`-independent:
//!
//! * every figure's `sim_cycles` (design sweeps plus the NoC sweep),
//! * every per-(design, query) `cycles` row from the `blame` section —
//!   the per-query granularity that localizes a figure-level
//!   regression to the query that caused it.
//!
//! Tolerance is symmetric (default ±10%): a large *improvement* fails
//! too, because it means the committed baseline no longer describes the
//! simulator and must be refreshed. Refresh with:
//!
//! ```text
//! SOURCE_DATE_EPOCH=0 cargo run --release -p q100-experiments -- \
//!     perf-report --jobs 1 --out ci/baselines/BENCH_baseline.json
//! ```
//!
//! Exit codes: 0 in-tolerance, 1 regression (delta table on stderr),
//! 2 usage or unreadable/invalid input.

use std::process::ExitCode;

use q100_trace::json::{self, Json};

/// Default symmetric tolerance, in percent.
const DEFAULT_TOLERANCE_PCT: f64 = 10.0;

/// One compared key with its cycle counts in both reports.
#[derive(Debug)]
struct Delta {
    key: String,
    base: f64,
    fresh: Option<f64>,
}

impl Delta {
    /// Signed drift in percent (`None` when the key vanished).
    fn pct(&self) -> Option<f64> {
        let fresh = self.fresh?;
        if self.base == 0.0 {
            return Some(if fresh == 0.0 { 0.0 } else { f64::INFINITY });
        }
        Some((fresh - self.base) / self.base * 100.0)
    }

    fn out_of_tolerance(&self, tol_pct: f64) -> bool {
        self.pct().is_none_or(|p| p.abs() > tol_pct)
    }
}

/// Pulls every deterministic cycle key out of a `q100-bench-v1` doc.
fn extract(text: &str, ctx: &str) -> Result<Vec<(String, f64)>, String> {
    let doc = json::parse(text).map_err(|e| format!("{ctx}: {e}"))?;
    if doc.get("schema").and_then(Json::as_str) != Some("q100-bench-v1") {
        return Err(format!("{ctx}: missing or unknown `schema` (want \"q100-bench-v1\")"));
    }
    let mut rows = Vec::new();
    let figures =
        doc.get("figures").and_then(Json::as_arr).ok_or(format!("{ctx}: missing `figures`"))?;
    for f in figures {
        let name =
            f.get("name").and_then(Json::as_str).ok_or(format!("{ctx}: figure without `name`"))?;
        let cycles = f
            .get("sim_cycles")
            .and_then(Json::as_num)
            .ok_or(format!("{ctx}: figure `{name}` without numeric `sim_cycles`"))?;
        rows.push((format!("figure {name}"), cycles));
    }
    // Older baselines may predate the blame section; compare it only
    // when present so the gate can be introduced without a flag day.
    if let Some(blame) = doc.get("blame").and_then(Json::as_arr) {
        for b in blame {
            let design = b
                .get("design")
                .and_then(Json::as_str)
                .ok_or(format!("{ctx}: blame row without `design`"))?;
            let query = b
                .get("query")
                .and_then(Json::as_str)
                .ok_or(format!("{ctx}: blame row without `query`"))?;
            let cycles = b
                .get("cycles")
                .and_then(Json::as_num)
                .ok_or(format!("{ctx}: blame row {design}/{query} without `cycles`"))?;
            rows.push((format!("{design}/{query}"), cycles));
        }
    }
    Ok(rows)
}

/// Pairs baseline keys with the fresh report's values, in baseline
/// order. Keys only the fresh report has are additions, not drift.
fn diff(base: &[(String, f64)], fresh: &[(String, f64)]) -> Vec<Delta> {
    base.iter()
        .map(|(key, b)| Delta {
            key: key.clone(),
            base: *b,
            fresh: fresh.iter().find(|(k, _)| k == key).map(|(_, v)| *v),
        })
        .collect()
}

/// Keys present only in the fresh report, in fresh order. These cannot
/// drift (there is nothing to compare against), but silently ignoring
/// them would hide a figure that never made it into the baseline — so
/// the gate reports each one as an explicit "new key, skipped" line and
/// reminds the operator to refresh.
fn fresh_only(base: &[(String, f64)], fresh: &[(String, f64)]) -> Vec<String> {
    fresh
        .iter()
        .filter(|(key, _)| !base.iter().any(|(k, _)| k == key))
        .map(|(key, _)| key.clone())
        .collect()
}

/// Renders the per-key delta table (baseline order).
fn render(deltas: &[Delta], tol_pct: f64) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} {:>14} {:>14} {:>9}  within +/-{tol_pct}%",
        "key", "baseline", "fresh", "delta"
    );
    for d in deltas {
        let fresh = d.fresh.map_or("MISSING".to_string(), |v| format!("{v:.0}"));
        let pct = d.pct().map_or("-".to_string(), |p| format!("{p:+.2}%"));
        let verdict = if d.out_of_tolerance(tol_pct) { "FAIL" } else { "ok" };
        let _ = writeln!(out, "{:<24} {:>14.0} {:>14} {:>9}  {verdict}", d.key, d.base, fresh, pct);
    }
    out
}

fn usage() -> ExitCode {
    eprintln!("usage: compare-bench <baseline.json> <fresh.json> [--tolerance <pct>] [--verbose]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tol_pct = DEFAULT_TOLERANCE_PCT;
    let mut verbose = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => return usage(),
            "--verbose" => verbose = true,
            "--tolerance" => {
                let Some(v) = iter.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("compare-bench: --tolerance requires a percentage");
                    return ExitCode::from(2);
                };
                tol_pct = v;
            }
            p => paths.push(p.to_string()),
        }
    }
    let [base_path, fresh_path] = paths.as_slice() else { return usage() };

    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let result = (|| -> Result<(Vec<Delta>, Vec<String>, bool), String> {
        let base = extract(&read(base_path)?, base_path)?;
        let fresh = extract(&read(fresh_path)?, fresh_path)?;
        if base.is_empty() {
            return Err(format!("{base_path}: no comparable keys"));
        }
        let deltas = diff(&base, &fresh);
        let ok = deltas.iter().all(|d| !d.out_of_tolerance(tol_pct));
        Ok((deltas, fresh_only(&base, &fresh), ok))
    })();

    match result {
        Err(e) => {
            eprintln!("compare-bench: error: {e}");
            ExitCode::from(2)
        }
        Ok((deltas, new_keys, true)) => {
            for key in &new_keys {
                println!("compare-bench: new key `{key}`, skipped (not in baseline)");
            }
            if verbose {
                // Signed per-key deltas even when everything is within
                // tolerance, so CI logs show how close each key sits to
                // the gate without failing a run to find out.
                print!("{}", render(&deltas, tol_pct));
            }
            println!("compare-bench: {} keys within +/-{tol_pct}% of {base_path}", deltas.len());
            if !new_keys.is_empty() {
                println!(
                    "compare-bench: {} new key(s) not yet gated — refresh the baseline to \
                     include them",
                    new_keys.len()
                );
            }
            ExitCode::SUCCESS
        }
        Ok((deltas, _, false)) => {
            eprintln!("compare-bench: cycle counts drifted beyond +/-{tol_pct}%:\n");
            eprint!("{}", render(&deltas, tol_pct));
            eprintln!(
                "\nif the drift is intended, refresh the baseline:\n  SOURCE_DATE_EPOCH=0 cargo \
                 run --release -p q100-experiments -- perf-report --jobs 1 --out {base_path}"
            );
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(q1: u64, fig: u64) -> String {
        format!(
            concat!(
                "{{\"schema\": \"q100-bench-v1\", \"figures\": [",
                "{{\"name\": \"design:Pareto\", \"sim_cycles\": {fig}, \"wall_ms\": 1.0}}],",
                "\"blame\": [",
                "{{\"design\": \"Pareto\", \"query\": \"q1\", \"cycles\": {q1}, ",
                "\"top_cause\": \"tile_wait\", \"top_cause_cycles\": 1.0}},",
                "{{\"design\": \"Pareto\", \"query\": \"q6\", \"cycles\": 1000, ",
                "\"top_cause\": \"tile_wait\", \"top_cause_cycles\": 1.0}}",
                "]}}"
            ),
            fig = fig,
            q1 = q1,
        )
    }

    fn verdict(base: &str, fresh: &str, tol: f64) -> bool {
        let b = extract(base, "base").unwrap();
        let f = extract(fresh, "fresh").unwrap();
        diff(&b, &f).iter().all(|d| !d.out_of_tolerance(tol))
    }

    #[test]
    fn identical_reports_pass() {
        assert!(verdict(&doc(5000, 9000), &doc(5000, 9000), 10.0));
    }

    #[test]
    fn small_drift_passes_large_fails() {
        // +5% on one query: within the symmetric +/-10%.
        assert!(verdict(&doc(5000, 9000), &doc(5250, 9000), 10.0));
        // An injected +12% per-query regression trips the gate even
        // though the figure total is untouched.
        assert!(!verdict(&doc(5000, 9000), &doc(5600, 9000), 10.0));
        // A -15% "improvement" fails too: the baseline is stale.
        assert!(!verdict(&doc(5000, 9000), &doc(4250, 9000), 10.0));
        // Figure-level regressions are caught independently.
        assert!(!verdict(&doc(5000, 9000), &doc(5000, 10_000), 10.0));
    }

    #[test]
    fn fresh_only_keys_are_reported_not_compared() {
        let base = doc(5000, 9000);
        let fresh = doc(5000, 9000).replace(
            "\"figures\": [",
            "\"figures\": [{\"name\": \"serve:soak\", \"sim_cycles\": 777, \"wall_ms\": 1.0},",
        );
        // The new figure doesn't trip the gate...
        assert!(verdict(&base, &fresh, 10.0));
        // ...but it is surfaced as an explicit new key.
        let b = extract(&base, "base").unwrap();
        let f = extract(&fresh, "fresh").unwrap();
        assert_eq!(fresh_only(&b, &f), vec!["figure serve:soak".to_string()]);
        assert!(fresh_only(&b, &b).is_empty());
    }

    #[test]
    fn missing_key_fails() {
        let base = doc(5000, 9000);
        let fresh = base.replace("\"query\": \"q6\"", "\"query\": \"q6_renamed\"");
        assert!(!verdict(&base, &fresh, 10.0));
    }

    #[test]
    fn baseline_without_blame_section_still_compares_figures() {
        let legacy = r#"{"schema": "q100-bench-v1", "figures": [
            {"name": "design:Pareto", "sim_cycles": 9000, "wall_ms": 1.0}]}"#;
        assert!(verdict(legacy, &doc(5000, 9000), 10.0));
        assert!(!verdict(legacy, &doc(5000, 11_000), 10.0));
    }

    #[test]
    fn delta_table_shows_signed_deltas_within_tolerance() {
        // The --verbose success path renders the same table: every key
        // gets its signed relative delta even when nothing failed.
        let b = extract(&doc(5000, 9000), "base").unwrap();
        let f = extract(&doc(5250, 8900), "fresh").unwrap();
        let table = render(&diff(&b, &f), 10.0);
        assert!(table.contains("+5.00%"));
        assert!(table.contains("-1.11%"));
        assert!(table.contains("+0.00%"));
        assert!(table.contains(" ok"));
        assert!(!table.contains("FAIL"));
    }

    #[test]
    fn delta_table_names_failures() {
        let b = extract(&doc(5000, 9000), "base").unwrap();
        let f = extract(&doc(5600, 9000), "fresh").unwrap();
        let table = render(&diff(&b, &f), 10.0);
        assert!(table.contains("Pareto/q1"));
        assert!(table.contains("+12.00%"));
        assert!(table.contains("FAIL"));
        assert!(table.contains("figure design:Pareto"));
    }
}
