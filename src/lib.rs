//! # Q100: a Database Processing Unit, in Rust
//!
//! This is the facade crate of a full reproduction of *“Q100: The
//! Architecture and Design of a Database Processing Unit”* (Wu, Lottarini,
//! Paine, Kim, Ross — ASPLOS 2014). It re-exports the public API of every
//! subsystem so downstream users can depend on a single crate:
//!
//! * [`columnar`] — typed columns, tables, schemas (the data substrate).
//! * [`tpch`] — deterministic TPC-H-style data generator and the 19
//!   benchmark queries, each expressed both as a software plan and as a
//!   Q100 spatial-instruction graph.
//! * [`dbms`] — the software column-store baseline executor and the Xeon
//!   cost/energy model standing in for MonetDB on the paper's server.
//! * [`core`] — the Q100 itself: ISA, tile models, functional + timing
//!   simulator, NoC/memory bandwidth models, schedulers, power model.
//! * [`compiler`] — lowers relational plans to Q100 graphs (the
//!   compiler the paper lists as future work).
//! * [`experiments`] — one runner per paper table/figure.
//! * [`serve`] — a deterministic query-serving layer: admission
//!   control, deadlines, retries, circuit breaking, and graceful
//!   degradation to the software baseline.
//!
//! # Quickstart
//!
//! ```
//! use q100::core::{QueryGraph, SimConfig, Simulator, TileMix};
//! use q100::tpch::{queries, TpchData};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Generate a small database, pick a Q100 design, run TPC-H Q6.
//! let db = TpchData::generate(0.01);
//! let graph: QueryGraph = queries::q06::plan(&db)?;
//! let config = SimConfig::pareto();
//! let sim = Simulator::new(&config);
//! let outcome = sim.run(&graph, &db)?;
//! println!(
//!     "Q6: {} cycles, {:.3} ms, {:.3} mJ",
//!     outcome.cycles,
//!     outcome.runtime_ms(),
//!     outcome.energy_mj()
//! );
//! assert!(outcome.cycles > 0);
//! let _ = TileMix::pareto();
//! # Ok(())
//! # }
//! ```

pub use q100_columnar as columnar;
pub use q100_compiler as compiler;
pub use q100_core as core;
pub use q100_dbms as dbms;
pub use q100_experiments as experiments;
pub use q100_serve as serve;
pub use q100_tpch as tpch;
