//! TPC-H on the Q100: a miniature of the paper's Section 4 evaluation.
//!
//! Generates a TPC-H database, runs a handful of queries on the three
//! paper designs (LowPower / Pareto / HighPerf), validates every Q100
//! result against the software column-store executor, and reports
//! runtime, energy, and the speedup over the modeled single-thread
//! software baseline.
//!
//! Run with: `cargo run --release --example tpch_benchmark [scale]`

use std::env;

use q100::core::{SimConfig, Simulator};
use q100::dbms::SoftwareCost;
use q100::tpch::{queries, TpchData};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = env::args().nth(1).map_or(0.01, |s| s.parse().expect("numeric scale factor"));
    println!("generating TPC-H data at scale factor {scale} ...");
    let db = TpchData::generate(scale);
    println!("database: {} bytes across 8 tables\n", db.bytes());

    let designs = [
        ("LowPower", SimConfig::low_power()),
        ("Pareto", SimConfig::pareto()),
        ("HighPerf", SimConfig::high_perf()),
    ];
    println!(
        "{:>5} {:>10} {:>12} | {:>21} {:>21} {:>21}",
        "query", "SW ms", "SW mJ", "LowPower", "Pareto", "HighPerf"
    );

    for name in ["q1", "q3", "q5", "q6", "q12", "q14", "q19"] {
        let query = queries::by_name(name).expect("known query");

        // Software baseline: execute and cost the plan.
        let (expected, stats) = q100::dbms::run(&(query.software)(), &db)?;
        let software = SoftwareCost::of(&stats);

        print!("{name:>5} {:>10.3} {:>12.3} |", software.runtime_ms, software.energy_mj);
        for (_, config) in &designs {
            let graph = (query.q100)(&db)?;
            let outcome = Simulator::new(config).run(&graph, &db)?;

            // Validate: the accelerator must compute the same rows.
            let got = queries::canonical_rows(&outcome.result_table(&graph)?);
            let want = queries::canonical_rows(&expected);
            assert_eq!(got, want, "{name}: Q100 result diverged from software");

            let speedup = software.runtime_ms / outcome.runtime_ms();
            print!(" {:>7.3}ms {:>6.0}x BW", outcome.runtime_ms(), speedup);
        }
        println!();
    }

    println!("\nall Q100 results validated against the software executor");
    Ok(())
}
