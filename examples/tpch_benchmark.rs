//! TPC-H on the Q100: a miniature of the paper's Section 4 evaluation.
//!
//! Generates a TPC-H database, runs a handful of queries on the three
//! paper designs (LowPower / Pareto / HighPerf), validates every Q100
//! result against the software column-store executor, and reports
//! runtime, energy, and the speedup over the modeled single-thread
//! software baseline.
//!
//! With `--trace [out.json]` it additionally records a structured event
//! trace of Q6 end-to-end on the Pareto design, prints the three
//! busiest tile kinds (busy-instruction-cycles summed from the
//! `TileBusy` occupancy events), and — when an output path is given —
//! writes a Chrome `trace_event` JSON viewable in `chrome://tracing`
//! or Perfetto.
//!
//! Run with: `cargo run --release --example tpch_benchmark [scale] [--trace [out.json]]`

use std::env;

use q100::core::trace::{RingRecorder, TraceEvent, TraceStream};
use q100::core::{SimConfig, Simulator};
use q100::dbms::SoftwareCost;
use q100::tpch::{queries, TpchData};

/// The query the `--trace` flag records end-to-end.
const TRACED_QUERY: &str = "q6";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut scale = 0.01f64;
    let mut trace = false;
    let mut trace_out: Option<String> = None;
    let mut args = env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        if arg == "--trace" {
            trace = true;
            if args.peek().is_some_and(|a| a.ends_with(".json")) {
                trace_out = args.next();
            }
        } else {
            scale = arg.parse().expect("numeric scale factor or --trace");
        }
    }
    println!("generating TPC-H data at scale factor {scale} ...");
    let db = TpchData::generate(scale);
    println!("database: {} bytes across 8 tables\n", db.bytes());

    let designs = [
        ("LowPower", SimConfig::low_power()),
        ("Pareto", SimConfig::pareto()),
        ("HighPerf", SimConfig::high_perf()),
    ];
    println!(
        "{:>5} {:>10} {:>12} | {:>21} {:>21} {:>21}",
        "query", "SW ms", "SW mJ", "LowPower", "Pareto", "HighPerf"
    );

    for name in ["q1", "q3", "q5", "q6", "q12", "q14", "q19"] {
        let query = queries::by_name(name).expect("known query");

        // Software baseline: execute and cost the plan.
        let (expected, stats) = q100::dbms::run(&(query.software)(), &db)?;
        let software = SoftwareCost::of(&stats);

        print!("{name:>5} {:>10.3} {:>12.3} |", software.runtime_ms, software.energy_mj);
        for (_, config) in &designs {
            let graph = (query.q100)(&db)?;
            let outcome = Simulator::new(config).run(&graph, &db)?;

            // Validate: the accelerator must compute the same rows.
            let got = queries::canonical_rows(&outcome.result_table(&graph)?);
            let want = queries::canonical_rows(&expected);
            assert_eq!(got, want, "{name}: Q100 result diverged from software");

            let speedup = software.runtime_ms / outcome.runtime_ms();
            print!(" {:>7.3}ms {:>6.0}x BW", outcome.runtime_ms(), speedup);
        }
        println!();
    }

    println!("\nall Q100 results validated against the software executor");

    // Bottleneck attribution on the Pareto design: re-simulate each
    // query with the stall-blame recorder attached and report where the
    // cycles went. `top_causes` ranks the blame ledger; the critical
    // path is the heaviest active-cycle chain through the stage DAG.
    println!("\nwhere the cycles go (Pareto design, stall-blame attribution):");
    println!("{:>5} {:>10}  {:<42} {:>10}", "query", "cycles", "top-3 blame causes", "crit.path");
    let pareto = SimConfig::pareto();
    for name in ["q1", "q3", "q5", "q6", "q12", "q14", "q19"] {
        let query = queries::by_name(name).expect("known query");
        let graph = (query.q100)(&db)?;
        let (outcome, report) = Simulator::new(&pareto).run_attributed(&graph, &db)?;
        let ledger: f64 = report.cause_totals().iter().sum::<f64>() + report.active_total();
        let causes: Vec<String> = report
            .top_causes()
            .iter()
            .take(3)
            .map(|(c, cy)| format!("{} {:.0}%", c.name(), cy / ledger.max(1.0) * 100.0))
            .collect();
        let cp = q100::core::trace::critical_path(&report);
        println!(
            "{name:>5} {:>10}  {:<42} {:>9.0}%",
            outcome.cycles,
            causes.join(", "),
            cp.fraction * 100.0
        );
    }

    if trace {
        trace_one_query(&db, trace_out.as_deref())?;
    }
    Ok(())
}

/// Re-runs [`TRACED_QUERY`] on the Pareto design with a ring recorder
/// attached, reports the busiest tile kinds, and optionally writes the
/// Chrome trace.
fn trace_one_query(db: &TpchData, out: Option<&str>) -> Result<(), Box<dyn std::error::Error>> {
    let query = queries::by_name(TRACED_QUERY).expect("known query");
    let graph = (query.q100)(db)?;
    let mut recorder = RingRecorder::new();
    let outcome =
        Simulator::new(&SimConfig::pareto()).run_traced(&graph, db, Some(&mut recorder))?;

    println!(
        "\ntraced {TRACED_QUERY} on Pareto: {} cycles, {} events recorded ({} dropped)",
        outcome.cycles,
        recorder.events().len(),
        recorder.dropped()
    );

    // Busy-instruction-cycles per tile kind: each TileBusy event says
    // `busy` instructions of kind `tile` moved data for `dt` cycles.
    let mut busy_cycles: Vec<(usize, u64)> = Vec::new();
    for ev in recorder.events() {
        if let TraceEvent::TileBusy { tile, dt, busy, .. } = ev {
            let idx = tile as usize;
            if busy_cycles.len() <= idx {
                busy_cycles.resize(idx + 1, (0, 0));
            }
            busy_cycles[idx] = (idx, busy_cycles[idx].1 + u64::from(dt) * u64::from(busy));
        }
    }
    busy_cycles.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    println!("top-3 busiest tile kinds (busy instruction-cycles):");
    for (idx, cycles) in busy_cycles.iter().take(3) {
        println!("  {:>12}  {cycles}", q100::core::exec::endpoint_name(*idx));
    }

    if let Some(path) = out {
        let streams = [TraceStream { name: TRACED_QUERY.to_string(), events: recorder.events() }];
        let names: Vec<&str> =
            (0..q100::core::ENDPOINTS).map(q100::core::exec::endpoint_name).collect();
        let json = q100::core::trace::chrome_trace_json(
            &streams,
            &names,
            q100::core::exec::bytes_per_cycle_to_gbps(1.0),
        );
        std::fs::write(path, json)?;
        println!("Chrome trace written to {path} (open in chrome://tracing or Perfetto)");
    }
    Ok(())
}
