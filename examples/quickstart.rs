//! Quickstart: the paper's Figure 1/2 walkthrough.
//!
//! Builds the sample sales-summary query from Figure 1 of the paper —
//! per-season quantity sums over shipped items — as a Q100
//! spatial-instruction graph, schedules it on a deliberately small tile
//! array so it splits into multiple temporal instructions (Figure 2),
//! and simulates it.
//!
//! Run with: `cargo run --release --example quickstart`

use q100::columnar::{date_to_days, Column, MemoryCatalog, Table, Value};
use q100::core::trace::{RingRecorder, TraceEvent};
use q100::core::{AggOp, CmpOp, QueryGraph, SimConfig, Simulator, TileKind, TileMix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small SALES table: season (1..=4), quantity, ship date.
    let rows = 40_000usize;
    let seasons: Vec<i64> = (0..rows).map(|i| (i as i64 * 7) % 4 + 1).collect();
    let quantities: Vec<i64> = (0..rows).map(|i| (i as i64 * 13) % 50 + 1).collect();
    let start = date_to_days(1998, 1, 1);
    let shipdates: Vec<i32> = (0..rows).map(|i| start + (i as i32 * 11) % 360).collect();
    let sales = Table::new(vec![
        Column::from_ints("s_season", seasons),
        Column::from_ints("s_quantity", quantities),
        Column::from_dates("s_shipdate", shipdates),
    ])?;
    let catalog = MemoryCatalog::new(vec![("sales".to_string(), sales)]);

    // Figure 1: SELECT s_season, SUM(s_quantity) FROM sales
    //           WHERE s_shipdate <= '1998-12-01' - 90 days
    //           GROUP BY s_season ORDER BY s_season
    let cutoff = date_to_days(1998, 9, 2);
    let mut b = QueryGraph::builder("sales-summary");
    let season = b.col_select_base("sales", "s_season"); // Col1
    let quantity = b.col_select_base("sales", "s_quantity"); // Col2
    let shipdate = b.col_select_base("sales", "s_shipdate"); // Col3
    let keep = b.bool_gen_const(shipdate, CmpOp::Lte, Value::Date(cutoff)); // Bool1
    let season_f = b.col_filter(season, keep); // Col4
    let quantity_f = b.col_filter(quantity, keep); // Col5
    let table1 = b.stitch(&[season_f, quantity_f]);
    // Partition on the season key so each partition holds one group
    // (Table2..Table5 in the paper).
    let parts = b.partition(table1, "s_season", vec![2, 3, 4]);
    let mut partials = Vec::new();
    for part in parts {
        let g = b.col_select(part, "s_season");
        let q = b.col_select(part, "s_quantity");
        partials.push(b.aggregate(AggOp::Sum, q, g));
    }
    let t6 = b.append(partials[0], partials[1]);
    let t7 = b.append(partials[2], partials[3]);
    let _final_answer = b.append(t6, t7);
    let graph: QueryGraph = b.finish()?;

    println!("{}", graph.render());

    // Figure 2's resource profile: 4 ColSelect, 2 ColFilter, 2 BoolGen,
    // 1 Stitch, 1 Partitioner, 2 Aggregators, 2 Appenders — too small
    // for the whole graph, so the scheduler emits several temporal
    // instructions.
    let mix = TileMix::uniform(1)
        .with_count(TileKind::ColSelect, 4)
        .with_count(TileKind::ColFilter, 2)
        .with_count(TileKind::BoolGen, 2)
        .with_count(TileKind::Aggregator, 2)
        .with_count(TileKind::Append, 2);
    // Attach a trace recorder so the timing simulator's structured
    // events (tinst begin/end, per-quantum tile occupancy, memory
    // samples) are captured alongside the aggregate outcome.
    let mut recorder = RingRecorder::new();
    let outcome =
        Simulator::new(&SimConfig::new(mix)).run_traced(&graph, &catalog, Some(&mut recorder))?;

    println!("schedule: {}", outcome.schedule);
    for (i, tinst) in outcome.schedule.tinsts.iter().enumerate() {
        println!(
            "  temporal instruction #{}: {} sinsts {:?}",
            i + 1,
            tinst.nodes.len(),
            tinst.nodes
        );
    }
    println!(
        "\nruntime: {} cycles at 315 MHz = {:.3} ms; energy: {:.4} mJ; spills: {} bytes",
        outcome.cycles,
        outcome.runtime_ms(),
        outcome.energy_mj(),
        outcome.timing.spill_bytes
    );

    // The trace narrates the same run: one TinstBegin/TinstEnd pair per
    // temporal instruction, with occupancy samples in between.
    let begins =
        recorder.events().iter().filter(|e| matches!(e, TraceEvent::TinstBegin { .. })).count();
    println!(
        "trace: {} events over {} temporal instructions ({} dropped)",
        recorder.events().len(),
        begins,
        recorder.dropped()
    );

    let result = outcome.result_table(&graph)?;
    println!("\nFinalAns (per-season quantity totals):\n{}", result.render(10));

    println!("{}", outcome.render_report(&graph));
    Ok(())
}
