//! Using the Q100 on your own data: an ad-hoc clickstream analysis.
//!
//! Shows the full public API surface outside TPC-H: build columnar
//! tables, register them in a catalog, express an analytic query as a
//! spatial-instruction graph (filter → join → aggregate), sweep
//! bandwidth provisioning, and inspect the communication profile.
//!
//! Run with: `cargo run --release --example custom_analytics`

use q100::columnar::{Column, MemoryCatalog, Table, Value};
use q100::core::trace::{RingRecorder, TraceEvent};
use q100::core::{AggOp, Bandwidth, CmpOp, QueryGraph, SimConfig, Simulator, MEMORY_ENDPOINT};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // pages(page_id, category), views(page_id, latency_ms, country)
    let n_pages = 2_000i64;
    let pages = Table::new(vec![
        Column::from_ints("page_id", (1..=n_pages).collect::<Vec<_>>()),
        Column::from_ints("category", (1..=n_pages).map(|p| p % 12).collect::<Vec<_>>()),
    ])?;
    let n_views = 300_000usize;
    let views = Table::new(vec![
        Column::from_ints(
            "v_page_id",
            (0..n_views).map(|i| (i as i64 * 17) % n_pages + 1).collect::<Vec<_>>(),
        ),
        Column::from_ints(
            "latency_ms",
            (0..n_views).map(|i| (i as i64 * 31) % 900 + 5).collect::<Vec<_>>(),
        ),
        Column::from_strs("country", (0..n_views).map(|i| ["DE", "FR", "JP", "US"][(i * 7) % 4])),
    ])?;
    let catalog =
        MemoryCatalog::new(vec![("pages".to_string(), pages), ("views".to_string(), views)]);

    // SELECT category, COUNT(*) slow_views FROM pages JOIN views
    // WHERE latency_ms > 500 AND country = 'US' GROUP BY category
    let mut b = QueryGraph::builder("slow-us-views-by-category");
    let vp = b.col_select_base("views", "v_page_id");
    let lat = b.col_select_base("views", "latency_ms");
    let country = b.col_select_base("views", "country");
    let slow = b.bool_gen_const(lat, CmpOp::Gt, Value::Int(500));
    let us = b.bool_gen_const(country, CmpOp::Eq, Value::Str("US".into()));
    let keep = b.alu(slow, q100::core::AluOp::And, us);
    let vp_f = b.col_filter(vp, keep);
    let views_f = b.stitch(&[vp_f]);

    let pid = b.col_select_base("pages", "page_id");
    let cat = b.col_select_base("pages", "category");
    let pages_t = b.stitch(&[pid, cat]);
    let joined = b.join(pages_t, "page_id", views_f, "v_page_id");

    // Group by the 12 categories: the partitioner isolates each value,
    // so the aggregator needs no sort (the paper's Figure 1 pattern).
    let cat_j = b.col_select(joined, "category");
    let pid_j = b.col_select(joined, "page_id");
    let grouped = b.stitch(&[cat_j, pid_j]);
    let parts = b.partition(grouped, "category", (1..12).collect());
    let partials: Vec<_> = parts
        .into_iter()
        .map(|p| {
            let g = b.col_select(p, "category");
            let d = b.col_select(p, "page_id");
            b.aggregate(AggOp::Count, d, g)
        })
        .collect();
    let _out = b.append_all(&partials);
    let graph: QueryGraph = b.finish()?;

    // Run under generous and starved memory bandwidth.
    for (label, bandwidth) in [
        ("ideal bandwidth", Bandwidth::ideal()),
        (
            "provisioned (6.3 GB/s NoC, 10 GB/s read)",
            Bandwidth {
                noc_gbps: Some(6.3),
                mem_read_gbps: Some(10.0),
                mem_write_gbps: Some(10.0),
            },
        ),
    ] {
        let config = SimConfig::pareto().with_bandwidth(bandwidth);
        // The trace recorder captures per-link bandwidth peaks as they
        // are set, so the hottest NoC links can be named afterwards.
        let mut recorder = RingRecorder::new();
        let outcome = Simulator::new(&config).run_traced(&graph, &catalog, Some(&mut recorder))?;
        println!(
            "{label}: {:.3} ms, {:.4} mJ, peak memory read {:.1} GB/s",
            outcome.runtime_ms(),
            outcome.energy_mj(),
            outcome.timing.mem_read.hi_gbps
        );
        let mut peaks: Vec<(u16, u16, f64)> = Vec::new();
        for ev in recorder.events() {
            if let TraceEvent::LinkPeak { src, dst, gbps, .. } = ev {
                // Later events supersede earlier peaks on the same link.
                match peaks.iter_mut().find(|(s, d, _)| (*s, *d) == (src, dst)) {
                    Some(slot) => slot.2 = gbps,
                    None => peaks.push((src, dst, gbps)),
                }
            }
        }
        peaks.sort_by(|a, b| b.2.total_cmp(&a.2));
        for (src, dst, gbps) in peaks.iter().take(2) {
            println!(
                "  hot link: {} -> {} at {gbps:.1} GB/s",
                q100::core::exec::endpoint_name(*src as usize),
                q100::core::exec::endpoint_name(*dst as usize),
            );
        }
        if label.starts_with("ideal") {
            // Which tile kinds talked to memory?
            let conns = &outcome.timing.connections;
            let from_mem: f64 =
                (0..q100::core::ENDPOINTS).map(|d| conns.get(MEMORY_ENDPOINT, d)).sum();
            println!("  memory feeds {from_mem} tile inputs across the schedule");
            println!("\nslow US views by category:\n{}", outcome.result_table(&graph)?.render(12));
        }
    }
    Ok(())
}
