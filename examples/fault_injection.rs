//! Fault injection: how a Q100 design degrades when tiles die, links
//! slow down, and memory channels throttle.
//!
//! Draws deterministic fault scenarios against the Pareto design and
//! runs TPC-H Q6 and Q14 through the resilience layer: killed tiles
//! force a reschedule onto the surviving mix, deratings slow the fluid
//! timing model, and a query whose last tile of a required kind died is
//! reported as `Unschedulable` — never a panic.
//!
//! Run with: `cargo run --release --example fault_injection`

use q100::core::trace::RingRecorder;
use q100::core::{
    execute_lean, run_resilient, CoreError, FaultScenario, PlanCache, ScheduleCache, SimConfig,
};
use q100::tpch::{queries, TpchData};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = TpchData::generate(0.01);
    let base = SimConfig::pareto();
    let cache = ScheduleCache::new();
    let plans = PlanCache::new();

    for (tag, name) in [(0u64, "q6"), (1, "q14")] {
        let query = queries::by_name(name).expect("known query");
        let graph = (query.q100)(&db)?;
        let functional = execute_lean(&graph, &db)?;

        // The fault-free baseline.
        let clean = FaultScenario { faults: Vec::new() };
        let baseline =
            run_resilient(&graph, &functional, &base, &clean, &cache, &plans, tag, None, None)?;
        println!("{name}: fault-free baseline {} cycles", baseline.outcome.cycles);

        // Escalating fault campaigns from fixed seeds.
        for (seed, rate) in [(7u64, 0.05), (7, 0.2), (9, 0.5)] {
            let scenario = FaultScenario::generate(seed, rate, &base.mix);
            let mut rec = RingRecorder::new();
            match run_resilient(
                &graph,
                &functional,
                &base,
                &scenario,
                &cache,
                &plans,
                tag,
                Some(&mut rec),
                None,
            ) {
                Ok(out) => println!(
                    "  rate {rate:>4}: {} faults, {} cycles ({:.2}x){}{}",
                    out.faults,
                    out.outcome.cycles,
                    out.outcome.slowdown_vs(baseline.outcome.cycles),
                    if out.rescheduled { ", rescheduled on degraded mix" } else { "" },
                    format_args!(", {} trace events", rec.events().len()),
                ),
                Err(CoreError::Unschedulable { kind, .. }) => println!(
                    "  rate {rate:>4}: {} faults, unschedulable (no {kind} tile left)",
                    scenario.faults.len()
                ),
                Err(e) => return Err(e.into()),
            }
        }
    }
    Ok(())
}
