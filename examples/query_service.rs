//! Serving a query stream: three tenants share one Q100 behind
//! admission control, deadlines, retries, a circuit breaker, and
//! graceful degradation to the software baseline.
//!
//! Builds a small TPC-H database, wraps the Pareto design in a
//! [`q100::serve::Q100Device`], and pushes the same seeded multi-tenant
//! request stream through it at two load levels — once fault-free, once
//! with 20% injected faults. Everything runs on a virtual clock
//! (simulated cycles), so the numbers below are byte-reproducible.
//!
//! Run with: `cargo run --release --example query_service`

use q100::core::{execute_lean, SimConfig, FREQUENCY_MHZ};
use q100::dbms::SoftwareCost;
use q100::serve::{run_service, Q100Device, ServePolicy, ServiceQuery, TenantSpec};
use q100::tpch::{queries, TpchData};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = TpchData::generate(0.01);

    // Prepare a six-query menu: graph + functional run + the measured
    // software-baseline cost each query falls back to.
    let names = ["q1", "q3", "q6", "q12", "q14", "q19"];
    let mut prepared = Vec::new();
    for name in names {
        let query = queries::by_name(name).expect("known query");
        let graph = (query.q100)(&db)?;
        let functional = execute_lean(&graph, &db)?;
        let (_, stats) = q100::dbms::run(&(query.software)(), &db)?;
        prepared.push((name, graph, functional, SoftwareCost::of(&stats)));
    }
    let queries: Vec<ServiceQuery<'_>> = prepared
        .iter()
        .map(|(name, graph, functional, software)| ServiceQuery {
            name: (*name).to_string(),
            graph,
            functional,
            software: *software,
        })
        .collect();

    let device = Q100Device::new(SimConfig::pareto(), queries)?;
    let mean = device.mean_baseline_cycles();
    println!(
        "device: Pareto design, {} queries, mean fault-free service {} cycles ({:.3} ms)",
        device.queries().len(),
        mean,
        mean as f64 / (FREQUENCY_MHZ * 1e3)
    );

    // Three tenants: latency-sensitive dashboards, mid-horizon
    // analytics, and deadline-tolerant batch reporting.
    let tenants = |load_factor: f64| -> Vec<TenantSpec> {
        let spec = |name: &str, weight: u32, deadline_x: u64, queries: Vec<usize>| TenantSpec {
            name: name.to_string(),
            // Offered rates sum to one request per `load_factor` mean
            // service times, split by weight (total weight 4).
            period_cycles: ((load_factor * mean as f64 * 4.0) as u64 / u64::from(weight)).max(1),
            deadline_cycles: deadline_x * mean,
            queries,
            weight,
        };
        vec![
            spec("interactive", 2, 4, vec![2, 5]),   // q6, q19: cheap scans
            spec("analytics", 1, 10, vec![1, 3, 4]), // q3, q12, q14: joins
            spec("batch", 1, 30, vec![0]),           // q1: the heavy aggregation
        ]
    };
    let policy = |fault_rate: f64| ServePolicy {
        backoff_base_cycles: mean / 8,
        fail_cost_cycles: mean / 16,
        breaker_cooldown_cycles: 8 * mean,
        fault_rate,
        ..ServePolicy::default()
    };

    for (load, load_factor) in [("light", 2.0), ("heavy", 0.6)] {
        for fault_rate in [0.0, 0.2] {
            let report = run_service(
                &device,
                &tenants(load_factor),
                &policy(fault_rate),
                42,
                600,
                None,
                None,
            );
            report.check_invariants().map_err(std::io::Error::other)?;
            println!(
                "\n== {load} load (x{load_factor}), {:.0}% faults: {} offered -> \
                 {} completed, {} shed, {} degraded, {} deadline-missed, {} retries ==",
                fault_rate * 100.0,
                report.offered,
                report.completed,
                report.shed,
                report.degraded,
                report.deadline_missed,
                report.retries,
            );
            if report.fallback.runs > 0 {
                println!("   software fallback absorbed {}", report.fallback);
            }
            for t in &report.tenants {
                let ms = |cycles: u64| cycles as f64 / (FREQUENCY_MHZ * 1e3);
                println!(
                    "   {:<12} {:>4} offered  shed {:>5.1}%  degraded {:>5.1}%  \
                     p50 {:>8.3} ms  p99 {:>8.3} ms",
                    t.name,
                    t.offered,
                    100.0 * t.shed as f64 / t.offered.max(1) as f64,
                    100.0 * t.degraded as f64 / t.offered.max(1) as f64,
                    ms(t.p50_latency_cycles),
                    ms(t.p99_latency_cycles),
                );
            }
        }
    }
    Ok(())
}
