//! Design-space exploration: a miniature of the paper's Figure 6.
//!
//! Sweeps ALU / partitioner / sorter counts over a reduced TPC-H
//! workload, prints the power–performance cloud, the Pareto frontier,
//! and the three design selections (minimum power, maximum performance,
//! maximum performance per Watt).
//!
//! Run with: `cargo run --release --example design_explorer`

use q100::experiments::{dse, Workload};

fn main() {
    // A reduced workload keeps the example snappy; the full exploration
    // is `q100-experiments --fig6`.
    let workload = Workload::prepare_subset(0.005, &["q1", "q3", "q6", "q10", "q12", "q14"]);

    println!("exploring 150 tile mixes over {} queries ...\n", workload.queries.len());
    let space = dse::explore(&workload);

    println!("{}", space.render_summary());

    println!("Pareto frontier (power W -> runtime ms):");
    for p in space.frontier() {
        println!(
            "  {:5.3} W -> {:7.3} ms   ({} ALU, {} partitioner, {} sorter)",
            p.power_w, p.runtime_ms, p.alus, p.partitioners, p.sorters
        );
    }

    // The trade-off in one sentence.
    let lp = space.low_power();
    let hp = space.high_perf();
    println!(
        "\nspending {:.2}x the power buys {:.2}x the performance",
        hp.power_w / lp.power_w,
        lp.runtime_ms / hp.runtime_ms
    );

    // The workload's metrics registry counted the exploration as it
    // ran: simulated cycles, pool batches, and schedule-cache traffic.
    let m = workload.metrics();
    println!(
        "\nexploration accounting: {} simulations over {} pool batches",
        m.counter("sim.runs"),
        m.counter("pool.batches"),
    );
    println!("schedule cache: {}", workload.sched_cache_stats());
}
