//! Cross-crate validation: every TPC-H query's Q100 plan must produce
//! exactly the software executor's result — the reproduction of the
//! paper's statement that "the Q100 query implementations produce the
//! same results as the SQL versions running on MonetDB".

use q100::tpch::{queries, TpchData};

#[test]
fn all_19_queries_validate_at_sf_001() {
    let db = TpchData::generate(0.01);
    let mut failures = Vec::new();
    for query in queries::all() {
        if let Err(e) = queries::validate(&query, &db) {
            failures.push(e);
        }
    }
    assert!(failures.is_empty(), "query validation failures:\n{}", failures.join("\n"));
}

#[test]
fn all_19_queries_validate_on_a_different_seed() {
    let db = TpchData::generate_seeded(0.004, 0xDEC0DE);
    for query in queries::all() {
        queries::validate(&query, &db).unwrap();
    }
}

#[test]
fn query_plans_avoid_sorter_capacity_violations() {
    // The paper's plans partition ahead of every sort so that no batch
    // exceeds the 1024-record sorter. Our planner statistics must
    // achieve the same: a capacity violation means the real hardware
    // would have mis-sorted.
    let db = TpchData::generate(0.02);
    for query in queries::all() {
        let graph = (query.q100)(&db).unwrap();
        let run = q100::core::execute(&graph, &db).unwrap();
        assert_eq!(
            run.profile.capacity_violations(),
            0,
            "{}: {} sorter batches exceeded 1024 records",
            query.name,
            run.profile.capacity_violations()
        );
    }
}

#[test]
fn every_query_reads_only_real_base_tables() {
    let db = TpchData::generate(0.002);
    for query in queries::all() {
        let graph = (query.q100)(&db).unwrap();
        for table in graph.base_tables() {
            assert!(
                q100::tpch::schema::TABLE_NAMES.contains(&table),
                "{}: unknown base table {table}",
                query.name
            );
        }
        assert!(!graph.is_empty());
        assert_eq!(graph.sinks().len(), 1, "{}: queries produce one result", query.name);
    }
}

#[test]
fn query_graphs_scale_with_data() {
    // Plans consult catalog statistics; bigger tables mean more
    // partitions for the scattered group-bys, hence more instructions.
    let small = TpchData::generate(0.002);
    let large = TpchData::generate(0.02);
    let q10 = queries::by_name("q10").unwrap();
    let g_small = (q10.q100)(&small).unwrap();
    let g_large = (q10.q100)(&large).unwrap();
    assert!(
        g_large.len() >= g_small.len(),
        "q10 should not shrink with 10x the data: {} vs {}",
        g_large.len(),
        g_small.len()
    );
}
