//! End-to-end assertions that the reproduction exhibits the *shapes*
//! the paper reports: who wins, by roughly what factor, and in what
//! order. Absolute numbers differ (our substrate is a model, not the
//! authors' testbed); these tests pin the qualitative results.

use q100::core::{power, Bandwidth, DesignBudget, SimConfig};
use q100::experiments::{comm, dse, sched_study, software_cmp, Workload};

fn workload() -> Workload {
    Workload::prepare(0.01)
}

#[test]
fn headline_speedup_and_energy_bands() {
    // Paper: 37X-70X faster than 1-thread software; ~3 orders of
    // magnitude (691X-983X average) less energy; 1.5X-2.9X faster than
    // idealized 24-thread software.
    let w = workload();
    let cmp = software_cmp::compare(&w);
    let lp_speed = cmp.mean_speedup(0);
    let hp_speed = cmp.mean_speedup(2);
    assert!(
        (20.0..=110.0).contains(&lp_speed),
        "LowPower speedup {lp_speed:.1}x outside the plausible band"
    );
    assert!(
        (30.0..=120.0).contains(&hp_speed),
        "HighPerf speedup {hp_speed:.1}x outside the plausible band"
    );
    assert!(hp_speed >= lp_speed, "HighPerf must beat LowPower");
    assert!(hp_speed / 24.0 >= 1.2, "must beat idealized 24-thread software");

    for d in 0..3 {
        let gain = cmp.mean_energy_gain(d);
        assert!(
            (300.0..=3000.0).contains(&gain),
            "design {d}: energy gain {gain:.0}x should be around three orders of magnitude"
        );
    }
}

#[test]
fn design_ordering_matches_figure_6() {
    let w = workload();
    let lp = w.total_runtime_ms(&SimConfig::low_power());
    let pareto = w.total_runtime_ms(&SimConfig::pareto());
    let hp = w.total_runtime_ms(&SimConfig::high_perf());
    assert!(pareto <= lp * 1.001, "Pareto at least as fast as LowPower");
    assert!(hp <= pareto * 1.001, "HighPerf at least as fast as Pareto");

    let p_lp = DesignBudget::of(&SimConfig::low_power()).total_power_w();
    let p_pa = DesignBudget::of(&SimConfig::pareto()).total_power_w();
    let p_hp = DesignBudget::of(&SimConfig::high_perf()).total_power_w();
    assert!(p_lp < p_pa && p_pa < p_hp, "power ordering LowPower < Pareto < HighPerf");
}

#[test]
fn table_1_and_3_reproduce_paper_numbers() {
    // Spot-check the published constants end to end.
    let t1 = power::render_table1();
    assert!(t1.contains("Partitioner"));
    let hp = DesignBudget::of(&SimConfig::high_perf());
    assert!((hp.total_area_mm2() - 7.384).abs() < 0.05, "{}", hp.total_area_mm2());
    assert!((100.0 * hp.power_fraction_of_xeon() - 26.1).abs() < 1.0);
}

#[test]
fn noc_limit_slows_some_queries_substantially() {
    // Paper Figure 13: a handful of queries slow dramatically under the
    // 6.3 GB/s NoC; most are insensitive.
    let w = Workload::prepare_subset(0.01, &["q1", "q6", "q10", "q11", "q16", "q4"]);
    let sweep = comm::bandwidth_sweep(&w, "NoC", &[5.0]);
    let mut sensitive = 0;
    let mut insensitive = 0;
    for (_, per_limit) in &sweep.rows {
        for (capped, ideal) in per_limit[0].iter().zip(&per_limit[1]) {
            let slowdown = capped / ideal;
            if slowdown > 1.25 {
                sensitive += 1;
            } else if slowdown < 1.1 {
                insensitive += 1;
            }
        }
    }
    assert!(sensitive > 0, "some queries must be NoC-sensitive");
    assert!(insensitive > 0, "most queries should tolerate the NoC limit");
}

#[test]
fn reads_dominate_writes_like_analytic_queries_should() {
    // Paper: "queries vary substantially in their memory read
    // bandwidths but relatively little in their write bandwidths ...
    // taking in large volumes of data and producing comparatively small
    // results".
    let w = workload();
    let reads = comm::mem_profile(&w, &SimConfig::pareto(), "read");
    let writes = comm::mem_profile(&w, &SimConfig::pareto(), "write");
    let read_avg: f64 = reads.per_query.iter().map(|(_, s)| s.avg_gbps).sum();
    let write_avg: f64 = writes.per_query.iter().map(|(_, s)| s.avg_gbps).sum();
    assert!(read_avg > write_avg * 1.5, "reads {read_avg:.1} vs writes {write_avg:.1}");
}

#[test]
fn scheduler_quality_ordering_holds_on_average() {
    // Paper Figures 20/22: data-aware <= naive, semi-exhaustive best on
    // spilled volume.
    let w = Workload::prepare_subset(0.01, &["q1", "q5", "q10", "q12", "q16", "q20"]);
    let study = sched_study::study(&w, "LowPower", &SimConfig::low_power());
    assert!(study.avg_spill_vs_naive(1) <= 1.0 + 1e-9, "data-aware spills more than naive");
    assert!(
        study.avg_spill_vs_naive(2) <= study.avg_spill_vs_naive(1) + 0.05,
        "semi-exhaustive should approach or beat data-aware"
    );
    assert!(study.avg_runtime_vs_naive(1) <= 1.1, "data-aware should not cost much time");
}

#[test]
fn dse_selects_small_fast_and_balanced_designs() {
    let w = Workload::prepare_subset(0.005, &["q1", "q6", "q10", "q12"]);
    let space = dse::explore(&w);
    assert_eq!(space.points.len(), 150, "the paper's 150 configurations");
    let lp = space.low_power();
    assert_eq!(
        (lp.alus, lp.partitioners, lp.sorters),
        (1, 1, 1),
        "minimum power is the minimal mix"
    );
    let hp = space.high_perf();
    assert!(hp.power_w > lp.power_w);
    assert!(hp.runtime_ms <= lp.runtime_ms);
    let pareto = space.pareto();
    assert!(pareto.power_w <= hp.power_w);
    assert!(pareto.runtime_ms <= lp.runtime_ms);
}

#[test]
fn hundredfold_data_keeps_energy_advantage() {
    // Paper Figures 25-26 at reduced absolute scale: growing the data
    // 100x keeps Q100 ahead of software in both time and energy.
    let base = 0.0004;
    let cmp = software_cmp::compare_scaled(base);
    assert!(cmp.mean_speedup(2) > 5.0, "HighPerf stays ahead at 100x data");
    assert!(cmp.mean_energy_gain(0) > 100.0, "energy advantage persists at 100x data");
}

#[test]
fn provisioned_bandwidth_costs_30_to_60_percent() {
    // Paper Figure 18: applying NoC + memory limits costs roughly
    // 33-62% over ideal.
    let w = workload();
    let stack = comm::limit_stack(&w);
    for (design, ideal, _noc, both) in &stack.rows {
        let slowdown = both / ideal;
        assert!(
            (1.0..=3.0).contains(&slowdown),
            "{design}: bandwidth limits cost {slowdown:.2}x, expected a moderate penalty"
        );
    }
    // At least one design visibly pays for its provisioning.
    assert!(
        stack.rows.iter().any(|(_, ideal, _, both)| both / ideal > 1.05),
        "bandwidth limits should be visible somewhere"
    );
}

#[test]
fn ideal_bandwidth_equals_unconstrained_config() {
    let w = Workload::prepare_subset(0.005, &["q6"]);
    let a = w.simulate(&w.queries[0], &SimConfig::pareto().with_bandwidth(Bandwidth::ideal()));
    let b = w.simulate(
        &w.queries[0],
        &SimConfig::pareto().with_bandwidth(Bandwidth {
            noc_gbps: Some(1e9),
            mem_read_gbps: Some(1e9),
            mem_write_gbps: Some(1e9),
        }),
    );
    assert_eq!(a.cycles, b.cycles, "huge caps behave like no caps");
}
